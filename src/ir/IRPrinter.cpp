//===- ir/IRPrinter.cpp - Textual IR dumping ------------------------------==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Casting.h"

#include <sstream>

using namespace cip;
using namespace cip::ir;

namespace {

std::string ref(const Value *V) {
  if (const auto *C = dyn_cast<Constant>(V))
    return std::to_string(C->value());
  if (isa<GlobalArray>(V))
    return "@" + V->name();
  return "%" + V->name();
}

} // namespace

std::string ir::printInstruction(const Instruction &I) {
  std::ostringstream OS;
  if (I.producesValue())
    OS << "%" << I.name() << " = ";
  OS << opcodeName(I.opcode());
  if (I.opcode() == Opcode::Call)
    OS << " @" << I.calleeName();
  if (I.opcode() == Opcode::Produce || I.opcode() == Opcode::Consume)
    OS << " q" << I.queueId();
  bool First = true;
  for (unsigned Op = 0; Op < I.numOperands(); ++Op) {
    OS << (First ? " " : ", ") << ref(I.operand(Op));
    if (I.opcode() == Opcode::Phi)
      OS << " [" << I.incomingBlock(Op)->name() << "]";
    First = false;
  }
  for (unsigned S = 0; S < I.numSuccessors(); ++S)
    OS << (First && S == 0 ? " " : ", ") << "label "
       << I.successor(S)->name();
  return OS.str();
}

std::string ir::printModule(const Module &M) {
  std::ostringstream OS;
  for (const auto &A : M.arrays())
    OS << "array @" << A->name() << "[" << A->size() << "]\n";
  for (const auto &F : M.functions())
    OS << printFunction(*F);
  return OS.str();
}

std::string ir::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func @" << F.name() << "(";
  for (unsigned I = 0; I < F.numArgs(); ++I)
    OS << (I ? ", " : "") << "%" << F.arg(I)->name();
  OS << ") {\n";
  for (const auto &BB : F.blocks()) {
    OS << BB->name() << ":\n";
    for (const auto &Inst : BB->instructions())
      OS << "  " << printInstruction(*Inst) << "\n";
  }
  OS << "}\n";
  return OS.str();
}

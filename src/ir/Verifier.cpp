//===- ir/Verifier.cpp - IR structural verification -----------------------==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "ir/Casting.h"
#include "ir/Dominators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace cip;
using namespace cip::ir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Function &F, std::vector<std::string> *Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    checkBlocks();
    if (Ok) {
      const CFG G(F);
      checkPhis(G);
      checkSSADominance(G);
    }
    return Ok;
  }

private:
  void fail(const std::string &Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back(Msg);
  }

  void checkBlocks() {
    if (F.blocks().empty()) {
      fail("function '" + F.name() + "' has no blocks");
      return;
    }
    std::unordered_set<const BasicBlock *> Owned;
    for (const auto &BB : F.blocks())
      Owned.insert(BB.get());

    unsigned Rets = 0;
    for (const auto &BB : F.blocks()) {
      if (BB->empty() || !BB->instructions().back()->isTerminator()) {
        fail("block '" + BB->name() + "' does not end in a terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (std::size_t I = 0; I < BB->size(); ++I) {
        const Instruction *Inst = BB->instructions()[I].get();
        if (Inst->isTerminator() && I + 1 != BB->size())
          fail("terminator not last in block '" + BB->name() + "'");
        if (Inst->opcode() == Opcode::Phi) {
          if (SeenNonPhi)
            fail("phi '" + Inst->name() + "' not at start of block '" +
                 BB->name() + "'");
        } else {
          SeenNonPhi = true;
        }
        if (Inst->opcode() == Opcode::Ret)
          ++Rets;
        for (unsigned S = 0; S < Inst->numSuccessors(); ++S)
          if (!Owned.count(Inst->successor(S)))
            fail("branch in block '" + BB->name() +
                 "' targets a foreign block");
        if (Inst->parent() != BB.get())
          fail("instruction '" + Inst->name() + "' has a stale parent link");
      }
    }
    if (Rets != 1)
      fail("function '" + F.name() + "' must contain exactly one ret, has " +
           std::to_string(Rets));
  }

  void checkPhis(const CFG &G) {
    for (const auto &BB : F.blocks()) {
      if (!G.isReachable(BB.get()))
        continue;
      const auto &Preds = G.predecessors(BB.get());
      for (const auto &Inst : BB->instructions()) {
        if (Inst->opcode() != Opcode::Phi)
          continue;
        if (Inst->numOperands() != Preds.size()) {
          fail("phi '" + Inst->name() + "' has " +
               std::to_string(Inst->numOperands()) + " incoming values but " +
               std::to_string(Preds.size()) + " predecessors");
          continue;
        }
        for (unsigned I = 0; I < Inst->numOperands(); ++I)
          if (std::find(Preds.begin(), Preds.end(),
                        Inst->incomingBlock(I)) == Preds.end())
            fail("phi '" + Inst->name() +
                 "' has an incoming block that is not a predecessor");
      }
    }
  }

  void checkSSADominance(const CFG &G) {
    const DominatorTree DT(G, /*Post=*/false);
    std::unordered_map<const Value *, const Instruction *> DefSite;
    for (const auto &BB : F.blocks())
      for (const auto &Inst : BB->instructions())
        if (Inst->producesValue())
          DefSite[Inst.get()] = Inst.get();

    auto defDominatesUse = [&](const Instruction *Def, const Instruction *Use,
                               unsigned OperandIdx) {
      const BasicBlock *DefBB = Def->parent();
      const BasicBlock *UseBB = Use->parent();
      if (Use->opcode() == Opcode::Phi) {
        // Phi uses happen at the end of the incoming block.
        const BasicBlock *In = Use->incomingBlock(OperandIdx);
        return DT.dominates(DefBB, In);
      }
      if (DefBB != UseBB)
        return DT.dominates(DefBB, UseBB);
      return DefBB->positionOf(Def) < UseBB->positionOf(Use);
    };

    for (const auto &BB : F.blocks()) {
      if (!G.isReachable(BB.get()))
        continue;
      for (const auto &Inst : BB->instructions())
        for (unsigned I = 0; I < Inst->numOperands(); ++I) {
          const Value *Op = Inst->operand(I);
          const auto *OpInst = dyn_cast<Instruction>(Op);
          if (!OpInst)
            continue; // constants, arguments, arrays are always available
          auto It = DefSite.find(OpInst);
          if (It == DefSite.end()) {
            fail("instruction '" + Inst->name() +
                 "' uses a non-value-producing instruction");
            continue;
          }
          if (!defDominatesUse(OpInst, Inst.get(), I))
            fail("use of '" + OpInst->name() + "' in '" + Inst->name() +
                 "' is not dominated by its definition");
        }
    }
  }

  const Function &F;
  std::vector<std::string> *Errors;
  bool Ok = true;
};

} // namespace

bool ir::verifyFunction(const Function &F, std::vector<std::string> *Errors) {
  return VerifierImpl(F, Errors).run();
}

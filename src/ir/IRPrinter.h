//===- ir/IRPrinter.h - Textual IR dumping ---------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders functions and instructions as human-readable text, used by tests
/// and the example pipelines to show the transformation outputs.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_IRPRINTER_H
#define CIP_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace cip {
namespace ir {

/// One-line rendering of \p I, e.g. "%sum = add %a, %b".
std::string printInstruction(const Instruction &I);

/// Full rendering of \p F with labeled blocks.
std::string printFunction(const Function &F);

/// Full rendering of \p M: array declarations then every function, in the
/// syntax ir/Parser.h accepts (round-trippable).
std::string printModule(const Module &M);

} // namespace ir
} // namespace cip

#endif // CIP_IR_IRPRINTER_H

//===- ir/Casting.h - LLVM-style isa/cast/dyn_cast -------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style: \c isa<T>(V), \c cast<T>(V), and
/// \c dyn_cast<T>(V), dispatching through each class's \c classof.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_CASTING_H
#define CIP_IR_CASTING_H

#include "support/Compiler.h"

namespace cip {
namespace ir {

/// True if \p V is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> to incompatible kind");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible kind");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *V) {
  return V && To::classof(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return V && To::classof(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace ir
} // namespace cip

#endif // CIP_IR_CASTING_H

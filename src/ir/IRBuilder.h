//===- ir/IRBuilder.h - Convenience IR construction ------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions to a current insertion block,
/// mirroring llvm::IRBuilder. Used by tests, examples, and the MTCG
/// transformation's code generation.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_IRBUILDER_H
#define CIP_IR_IRBUILDER_H

#include "ir/IR.h"

namespace cip {
namespace ir {

/// See file comment.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *BB) { Block = BB; }
  BasicBlock *insertBlock() const { return Block; }

  Constant *constant(std::int64_t V) { return M.getConstant(V); }

  Instruction *binary(Opcode Op, Value *L, Value *R, std::string Name) {
    return append(Op, std::move(Name), {L, R});
  }

  Instruction *add(Value *L, Value *R, std::string Name) {
    return binary(Opcode::Add, L, R, std::move(Name));
  }
  Instruction *sub(Value *L, Value *R, std::string Name) {
    return binary(Opcode::Sub, L, R, std::move(Name));
  }
  Instruction *mul(Value *L, Value *R, std::string Name) {
    return binary(Opcode::Mul, L, R, std::move(Name));
  }
  Instruction *rem(Value *L, Value *R, std::string Name) {
    return binary(Opcode::Rem, L, R, std::move(Name));
  }
  Instruction *cmp(Opcode Op, Value *L, Value *R, std::string Name) {
    assert(Op >= Opcode::CmpEQ && Op <= Opcode::CmpGE && "not a comparison");
    return binary(Op, L, R, std::move(Name));
  }

  Instruction *select(Value *Cond, Value *A, Value *B, std::string Name) {
    return append(Opcode::Select, std::move(Name), {Cond, A, B});
  }

  Instruction *phi(std::string Name) {
    return append(Opcode::Phi, std::move(Name), {});
  }

  Instruction *load(GlobalArray *Array, Value *Index, std::string Name) {
    return append(Opcode::Load, std::move(Name), {Array, Index});
  }

  Instruction *store(GlobalArray *Array, Value *Index, Value *V) {
    return append(Opcode::Store, "", {Array, Index, V});
  }

  Instruction *br(BasicBlock *Target) {
    Instruction *I = append(Opcode::Br, "", {});
    I->setSuccessors({Target});
    return I;
  }

  Instruction *condBr(Value *Cond, BasicBlock *IfTrue, BasicBlock *IfFalse) {
    Instruction *I = append(Opcode::CondBr, "", {Cond});
    I->setSuccessors({IfTrue, IfFalse});
    return I;
  }

  Instruction *ret(Value *V = nullptr) {
    return append(Opcode::Ret, "",
                  V ? std::vector<Value *>{V} : std::vector<Value *>{});
  }

  Instruction *call(std::string Callee, std::vector<Value *> Args,
                    std::string Name) {
    Instruction *I = append(Opcode::Call, std::move(Name), std::move(Args));
    I->setCalleeName(std::move(Callee));
    return I;
  }

  Instruction *produce(std::uint32_t QueueId, Value *V) {
    Instruction *I = append(Opcode::Produce, "", {V});
    I->setQueueId(QueueId);
    return I;
  }

  Instruction *consume(std::uint32_t QueueId, std::string Name) {
    Instruction *I = append(Opcode::Consume, std::move(Name), {});
    I->setQueueId(QueueId);
    return I;
  }

private:
  Instruction *append(Opcode Op, std::string Name,
                      std::vector<Value *> Operands) {
    assert(Block && "no insertion point set");
    return Block->append(std::make_unique<Instruction>(Op, std::move(Name),
                                                       std::move(Operands)));
  }

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace ir
} // namespace cip

#endif // CIP_IR_IRBUILDER_H

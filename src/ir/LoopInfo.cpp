//===- ir/LoopInfo.cpp - Natural loop detection and nesting --------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"

#include <algorithm>

using namespace cip;
using namespace cip::ir;

BasicBlock *Loop::preheader(const CFG &G) const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : G.predecessors(Header)) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr; // multiple out-of-loop predecessors
    Pre = P;
  }
  if (Pre && G.successors(Pre).size() != 1)
    return nullptr;
  return Pre;
}

std::vector<BasicBlock *> Loop::exitingBlocks(const CFG &G) const {
  std::vector<BasicBlock *> Exiting;
  for (const BasicBlock *BB : Blocks)
    for (BasicBlock *S : G.successors(BB))
      if (!contains(S)) {
        Exiting.push_back(const_cast<BasicBlock *>(BB));
        break;
      }
  return Exiting;
}

std::vector<BasicBlock *> Loop::latches(const CFG &G) const {
  std::vector<BasicBlock *> Latches;
  for (BasicBlock *P : G.predecessors(Header))
    if (contains(P))
      Latches.push_back(P);
  return Latches;
}

LoopInfo::LoopInfo(const CFG &G, const DominatorTree &DT) {
  assert(!DT.isPostDominatorTree() && "LoopInfo needs forward dominators");

  // Discover loops per back edge (tail -> header where header dominates
  // tail), walking predecessors backwards from the tail.
  std::unordered_map<const BasicBlock *, Loop *> HeaderLoop;
  for (BasicBlock *BB : G.reversePostOrder()) {
    for (BasicBlock *Succ : G.successors(BB)) {
      if (!DT.dominates(Succ, BB))
        continue;
      Loop *&L = HeaderLoop[Succ];
      if (!L) {
        Storage.push_back(std::make_unique<Loop>(Succ));
        L = Storage.back().get();
      }
      // Flood the loop body backwards from the latch.
      std::vector<BasicBlock *> Work;
      if (!L->contains(BB)) {
        L->Blocks.insert(BB);
        Work.push_back(BB);
      }
      while (!Work.empty()) {
        BasicBlock *X = Work.back();
        Work.pop_back();
        if (X == Succ)
          continue;
        for (BasicBlock *P : G.predecessors(X))
          if (G.isReachable(P) && !L->contains(P)) {
            L->Blocks.insert(P);
            Work.push_back(P);
          }
      }
    }
  }

  // Establish nesting: sort loops by ascending block count; each loop's
  // parent is the smallest strictly larger loop containing its header.
  std::vector<Loop *> Loops;
  for (const auto &L : Storage)
    Loops.push_back(L.get());
  std::sort(Loops.begin(), Loops.end(), [](const Loop *A, const Loop *B) {
    return A->blocks().size() < B->blocks().size();
  });
  for (std::size_t I = 0; I < Loops.size(); ++I) {
    for (std::size_t J = I + 1; J < Loops.size(); ++J) {
      if (Loops[J]->contains(Loops[I]->header()) && Loops[J] != Loops[I]) {
        Loops[I]->Parent = Loops[J];
        Loops[J]->SubLoops.push_back(Loops[I]);
        break;
      }
    }
    if (!Loops[I]->Parent)
      TopLevel.push_back(Loops[I]);
  }

  // Innermost-loop map: visit loops from outermost to innermost so inner
  // assignments overwrite outer ones.
  std::vector<Loop *> ByDepth = Loops;
  std::sort(ByDepth.begin(), ByDepth.end(), [](const Loop *A, const Loop *B) {
    return A->depth() < B->depth();
  });
  for (Loop *L : ByDepth)
    for (const BasicBlock *BB : L->blocks())
      InnermostLoop[BB] = L;
}

std::vector<Loop *> LoopInfo::allLoops() const {
  std::vector<Loop *> All;
  std::vector<Loop *> Work(TopLevel.rbegin(), TopLevel.rend());
  while (!Work.empty()) {
    Loop *L = Work.back();
    Work.pop_back();
    All.push_back(L);
    for (Loop *S : L->subLoops())
      Work.push_back(S);
  }
  return All;
}

//===- ir/LoopInfo.h - Natural loop detection and nesting ------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from dominator-identified back edges, organized into a
/// nesting forest. The SPECCROSS region detector (§4.3) looks for an
/// outermost loop whose body is a sequence of parallelizable inner loops;
/// DOMORE targets a loop nest whose inner loop is parallelizable (§3.3).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_LOOPINFO_H
#define CIP_IR_LOOPINFO_H

#include "ir/CFG.h"
#include "ir/Dominators.h"

#include <memory>
#include <unordered_set>

namespace cip {
namespace ir {

/// One natural loop: header, blocks, latches, nesting links.
class Loop {
public:
  Loop(BasicBlock *Header) : Header(Header) { Blocks.insert(Header); }

  BasicBlock *header() const { return Header; }

  bool contains(const BasicBlock *BB) const { return Blocks.count(BB) != 0; }
  bool contains(const Loop *L) const {
    for (const Loop *X = L; X; X = X->parentLoop())
      if (X == this)
        return true;
    return false;
  }

  const std::unordered_set<const BasicBlock *> &blocks() const {
    return Blocks;
  }

  Loop *parentLoop() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }

  unsigned depth() const {
    unsigned D = 1;
    for (const Loop *P = Parent; P; P = P->Parent)
      ++D;
    return D;
  }

  /// The loop's single preheader: the unique out-of-loop predecessor of the
  /// header, if its only successor is the header. Null otherwise.
  BasicBlock *preheader(const CFG &G) const;

  /// Blocks inside the loop with a branch leaving the loop.
  std::vector<BasicBlock *> exitingBlocks(const CFG &G) const;

  /// In-loop predecessors of the header (back-edge sources).
  std::vector<BasicBlock *> latches(const CFG &G) const;

private:
  friend class LoopInfo;

  BasicBlock *Header;
  std::unordered_set<const BasicBlock *> Blocks;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
};

/// The loop forest of a function.
class LoopInfo {
public:
  LoopInfo(const CFG &G, const DominatorTree &DT);

  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// Innermost loop containing \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const {
    auto It = InnermostLoop.find(BB);
    return It == InnermostLoop.end() ? nullptr : It->second;
  }

  /// All loops, outermost first within each nest.
  std::vector<Loop *> allLoops() const;

private:
  std::vector<std::unique_ptr<Loop>> Storage;
  std::vector<Loop *> TopLevel;
  std::unordered_map<const BasicBlock *, Loop *> InnermostLoop;
};

} // namespace ir
} // namespace cip

#endif // CIP_IR_LOOPINFO_H

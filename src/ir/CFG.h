//===- ir/CFG.h - Control-flow graph utilities -----------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor/successor maps and traversal orders over a Function's basic
/// blocks, consumed by the dominator and loop analyses.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_CFG_H
#define CIP_IR_CFG_H

#include "ir/IR.h"

#include <unordered_map>
#include <vector>

namespace cip {
namespace ir {

/// Immutable CFG snapshot of a Function.
class CFG {
public:
  explicit CFG(const Function &F);

  const Function &function() const { return F; }

  const std::vector<BasicBlock *> &successors(const BasicBlock *BB) const;
  const std::vector<BasicBlock *> &predecessors(const BasicBlock *BB) const;

  /// Blocks in reverse post-order from the entry. Unreachable blocks are
  /// excluded.
  const std::vector<BasicBlock *> &reversePostOrder() const { return RPO; }

  /// Position of \p BB in the reverse post-order, or ~0u if unreachable.
  unsigned rpoIndex(const BasicBlock *BB) const {
    auto It = RPOIndex.find(BB);
    return It == RPOIndex.end() ? ~0u : It->second;
  }

  bool isReachable(const BasicBlock *BB) const {
    return RPOIndex.count(BB) != 0;
  }

private:
  const Function &F;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Succs;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, unsigned> RPOIndex;
};

} // namespace ir
} // namespace cip

#endif // CIP_IR_CFG_H

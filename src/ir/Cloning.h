//===- ir/Cloning.h - Function cloning utilities ---------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-cloning of functions with a value map, used by the MTCG code
/// generator to materialize the scheduler partition from the original loop
/// nest (§3.3.2 duplicates relevant blocks into each thread's function).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_CLONING_H
#define CIP_IR_CLONING_H

#include "ir/IR.h"

#include <unordered_map>

namespace cip {
namespace ir {

/// Map from original values/blocks to their clones.
struct CloneMap {
  std::unordered_map<const Value *, Value *> Values;
  std::unordered_map<const BasicBlock *, BasicBlock *> Blocks;

  Value *value(const Value *V) const {
    auto It = Values.find(V);
    return It == Values.end() ? const_cast<Value *>(V) : It->second;
  }
  BasicBlock *block(const BasicBlock *BB) const {
    auto It = Blocks.find(BB);
    assert(It != Blocks.end() && "block has no clone");
    return It->second;
  }
  Instruction *instruction(const Instruction *I) const {
    auto It = Values.find(I);
    return It == Values.end() ? nullptr
                              : static_cast<Instruction *>(It->second);
  }
};

/// Clones \p F into a new function named \p NewName inside \p M. Arguments
/// map to the new function's arguments; constants and global arrays are
/// shared. Returns the clone; \p Map receives the correspondence.
Function *cloneFunction(Module &M, const Function &F,
                        const std::string &NewName, CloneMap &Map);

} // namespace ir
} // namespace cip

#endif // CIP_IR_CLONING_H

//===- ir/Parser.cpp - Textual IR parsing ----------------------------------=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Casting.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace cip;
using namespace cip::ir;

namespace {

/// One parsed operand, resolved after all instruction shells exist.
struct OperandDesc {
  enum KindTy { ValueRef, ArrayRef, ConstVal, Unset } Kind = Unset;
  std::string Name;          // ValueRef / ArrayRef
  std::int64_t Value = 0;    // ConstVal
  std::string IncomingBlock; // set on phi operands: "[block]"
};

/// One parsed instruction line.
struct InstDesc {
  Opcode Op = Opcode::Ret;
  std::string Result; // empty if none
  std::string Callee;
  std::uint32_t QueueId = 0;
  std::vector<OperandDesc> Operands;
  std::vector<std::string> Successors;
  unsigned Line = 0;
};

std::optional<Opcode> opcodeFromName(const std::string &S) {
  static const std::unordered_map<std::string, Opcode> Table = {
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},       {"div", Opcode::Div},
      {"rem", Opcode::Rem},       {"and", Opcode::And},
      {"or", Opcode::Or},         {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
      {"cmpeq", Opcode::CmpEQ},   {"cmpne", Opcode::CmpNE},
      {"cmplt", Opcode::CmpLT},   {"cmple", Opcode::CmpLE},
      {"cmpgt", Opcode::CmpGT},   {"cmpge", Opcode::CmpGE},
      {"select", Opcode::Select}, {"phi", Opcode::Phi},
      {"load", Opcode::Load},     {"store", Opcode::Store},
      {"br", Opcode::Br},         {"condbr", Opcode::CondBr},
      {"ret", Opcode::Ret},       {"call", Opcode::Call},
      {"produce", Opcode::Produce}, {"consume", Opcode::Consume},
  };
  auto It = Table.find(S);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

/// Splits one line into tokens: punctuation characters and runs of
/// identifier characters. Commas are separators only.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::size_t I = 0;
  while (I < Line.size()) {
    const char C = Line[I];
    if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
      ++I;
      continue;
    }
    if (isIdentChar(C) || (C == '-' && I + 1 < Line.size() &&
                           std::isdigit(static_cast<unsigned char>(
                               Line[I + 1])))) {
      std::size_t J = I + (C == '-' ? 1 : 0);
      while (J < Line.size() && isIdentChar(Line[J]))
        ++J;
      Tokens.push_back(Line.substr(I, J - I));
      I = J;
      continue;
    }
    Tokens.push_back(std::string(1, C));
    ++I;
  }
  return Tokens;
}

bool isInteger(const std::string &S) {
  if (S.empty())
    return false;
  std::size_t I = S[0] == '-' ? 1 : 0;
  if (I == S.size())
    return false;
  for (; I < S.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
  return true;
}

/// Parser state for one module.
class ParserImpl {
public:
  explicit ParserImpl(const std::string &Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    auto M = std::make_unique<Module>();
    std::istringstream In(Text);
    std::string Line;
    unsigned LineNo = 0;

    // Current function context.
    Function *F = nullptr;
    std::vector<std::pair<std::string, std::vector<InstDesc>>> Blocks;

    auto Fail = [&](const std::string &Msg) {
      R.Error = Msg;
      R.ErrorLine = LineNo;
      return std::move(R);
    };

    while (std::getline(In, Line)) {
      ++LineNo;
      const auto Tokens = tokenize(Line);
      if (Tokens.empty())
        continue;

      if (Tokens[0] == "array") {
        // array @name [ N ]
        if (F)
          return Fail("array declaration inside a function");
        if (Tokens.size() < 6 || Tokens[1] != "@" || Tokens[3] != "[" ||
            !isInteger(Tokens[4]) || Tokens[5] != "]")
          return Fail("malformed array declaration");
        M->createArray(Tokens[2], std::stoull(Tokens[4]));
        continue;
      }

      if (Tokens[0] == "func") {
        if (F)
          return Fail("nested function definition");
        // func @name ( %a %b ) {
        if (Tokens.size() < 5 || Tokens[1] != "@")
          return Fail("malformed function header");
        const std::string FName = Tokens[2];
        std::vector<std::string> ArgNames;
        std::size_t I = 3;
        if (I >= Tokens.size() || Tokens[I] != "(")
          return Fail("expected '(' in function header");
        ++I;
        while (I < Tokens.size() && Tokens[I] != ")") {
          if (Tokens[I] == "%") {
            if (I + 1 >= Tokens.size())
              return Fail("dangling '%' in argument list");
            ArgNames.push_back(Tokens[I + 1]);
            I += 2;
          } else {
            return Fail("unexpected token in argument list");
          }
        }
        if (I >= Tokens.size())
          return Fail("unterminated argument list");
        F = M->createFunction(FName,
                              static_cast<unsigned>(ArgNames.size()));
        for (unsigned A = 0; A < ArgNames.size(); ++A)
          F->arg(A)->setName(ArgNames[A]);
        Blocks.clear();
        continue;
      }

      if (Tokens[0] == "}") {
        if (!F)
          return Fail("'}' outside a function");
        if (const auto Err = materialize(*M, *F, Blocks))
          return Fail(*Err);
        F = nullptr;
        continue;
      }

      if (!F)
        return Fail("instruction outside a function");

      // Block label: name ":"
      if (Tokens.size() == 2 && Tokens[1] == ":") {
        Blocks.emplace_back(Tokens[0], std::vector<InstDesc>());
        continue;
      }
      if (Blocks.empty())
        return Fail("instruction before the first block label");

      InstDesc D;
      D.Line = LineNo;
      if (const auto Err = parseInstruction(Tokens, D))
        return Fail(*Err);
      Blocks.back().second.push_back(std::move(D));
    }
    if (F)
      return Fail("unterminated function");
    R.M = std::move(M);
    return R;
  }

private:
  std::optional<std::string>
  parseInstruction(const std::vector<std::string> &Tokens, InstDesc &D) {
    std::size_t I = 0;
    // Optional "%res =" prefix.
    if (Tokens[0] == "%" && Tokens.size() > 3 && Tokens[2] == "=") {
      D.Result = Tokens[1];
      I = 3;
    }
    if (I >= Tokens.size())
      return "missing opcode";
    const auto Op = opcodeFromName(Tokens[I]);
    if (!Op)
      return "unknown opcode '" + Tokens[I] + "'";
    D.Op = *Op;
    ++I;

    if (D.Op == Opcode::Call) {
      if (I + 1 >= Tokens.size() || Tokens[I] != "@")
        return "call without a callee";
      D.Callee = Tokens[I + 1];
      I += 2;
    }
    if (D.Op == Opcode::Produce || D.Op == Opcode::Consume) {
      if (I >= Tokens.size() || Tokens[I].size() < 2 || Tokens[I][0] != 'q' ||
          !isInteger(Tokens[I].substr(1)))
        return "produce/consume without a queue id";
      D.QueueId = static_cast<std::uint32_t>(std::stoul(Tokens[I].substr(1)));
      ++I;
    }

    while (I < Tokens.size()) {
      const std::string &T = Tokens[I];
      if (T == "label") {
        if (I + 1 >= Tokens.size())
          return "dangling 'label'";
        D.Successors.push_back(Tokens[I + 1]);
        I += 2;
        continue;
      }
      if (T == "[") {
        // Phi incoming block, attaches to the previous operand.
        if (D.Operands.empty() || I + 2 >= Tokens.size() ||
            Tokens[I + 2] != "]")
          return "malformed phi incoming block";
        D.Operands.back().IncomingBlock = Tokens[I + 1];
        I += 3;
        continue;
      }
      OperandDesc O;
      if (T == "%") {
        if (I + 1 >= Tokens.size())
          return "dangling '%'";
        O.Kind = OperandDesc::ValueRef;
        O.Name = Tokens[I + 1];
        I += 2;
      } else if (T == "@") {
        if (I + 1 >= Tokens.size())
          return "dangling '@'";
        O.Kind = OperandDesc::ArrayRef;
        O.Name = Tokens[I + 1];
        I += 2;
      } else if (isInteger(T)) {
        O.Kind = OperandDesc::ConstVal;
        O.Value = std::stoll(T);
        ++I;
      } else {
        return "unexpected token '" + T + "'";
      }
      D.Operands.push_back(std::move(O));
    }
    return std::nullopt;
  }

  /// Builds the function body from the block descriptors: shells first so
  /// forward references resolve, then operands.
  std::optional<std::string> materialize(
      Module &M, Function &F,
      const std::vector<std::pair<std::string, std::vector<InstDesc>>>
          &Blocks) {
    std::unordered_map<std::string, BasicBlock *> BlockOf;
    std::unordered_map<std::string, Value *> ValueOf;
    for (unsigned A = 0; A < F.numArgs(); ++A)
      ValueOf[F.arg(A)->name()] = F.arg(A);

    for (const auto &[Name, Insts] : Blocks) {
      if (BlockOf.count(Name))
        return "duplicate block label '" + Name + "'";
      BlockOf[Name] = F.createBlock(Name);
      (void)Insts;
    }

    // Shells, registering result names.
    std::vector<Instruction *> Shells;
    for (const auto &[Name, Insts] : Blocks) {
      BasicBlock *BB = BlockOf[Name];
      for (const InstDesc &D : Insts) {
        auto Shell = std::make_unique<Instruction>(D.Op, D.Result,
                                                   std::vector<Value *>{});
        Shell->setCalleeName(D.Callee);
        Shell->setQueueId(D.QueueId);
        Instruction *I = BB->append(std::move(Shell));
        Shells.push_back(I);
        if (!D.Result.empty()) {
          if (ValueOf.count(D.Result))
            return "redefinition of '%" + D.Result + "'";
          ValueOf[D.Result] = I;
        }
      }
    }

    // Resolve operands and successors.
    std::size_t ShellIdx = 0;
    for (const auto &[Name, Insts] : Blocks) {
      (void)Name;
      for (const InstDesc &D : Insts) {
        Instruction *I = Shells[ShellIdx++];
        for (const OperandDesc &O : D.Operands) {
          Value *V = nullptr;
          switch (O.Kind) {
          case OperandDesc::ValueRef: {
            auto It = ValueOf.find(O.Name);
            if (It == ValueOf.end())
              return "use of undefined value '%" + O.Name + "' (line " +
                     std::to_string(D.Line) + ")";
            V = It->second;
            break;
          }
          case OperandDesc::ArrayRef:
            V = M.getArray(O.Name);
            if (!V)
              return "use of undeclared array '@" + O.Name + "'";
            break;
          case OperandDesc::ConstVal:
            V = M.getConstant(O.Value);
            break;
          case OperandDesc::Unset:
            return "internal: unset operand";
          }
          if (D.Op == Opcode::Phi) {
            auto BIt = BlockOf.find(O.IncomingBlock);
            if (O.IncomingBlock.empty() || BIt == BlockOf.end())
              return "phi operand without a valid incoming block (line " +
                     std::to_string(D.Line) + ")";
            I->addIncoming(V, BIt->second);
          } else {
            I->addOperand(V);
          }
        }
        if (!D.Successors.empty()) {
          std::vector<BasicBlock *> Succs;
          for (const std::string &SName : D.Successors) {
            auto BIt = BlockOf.find(SName);
            if (BIt == BlockOf.end())
              return "branch to unknown block '" + SName + "'";
            Succs.push_back(BIt->second);
          }
          I->setSuccessors(std::move(Succs));
        }
      }
    }
    return std::nullopt;
  }

  const std::string &Text;
};

} // namespace

ParseResult ir::parseModule(const std::string &Text) {
  return ParserImpl(Text).run();
}

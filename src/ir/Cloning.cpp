//===- ir/Cloning.cpp - Function cloning utilities ------------------------==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Casting.h"

using namespace cip;
using namespace cip::ir;

Function *ir::cloneFunction(Module &M, const Function &F,
                            const std::string &NewName, CloneMap &Map) {
  Function *NF = M.createFunction(NewName, F.numArgs());
  for (unsigned I = 0; I < F.numArgs(); ++I)
    Map.Values[F.arg(I)] = NF->arg(I);

  // Pass 1: create blocks and instruction shells. Phis start empty (their
  // incoming lists are rebuilt in pass 2); other instructions carry their
  // original operands until remapping.
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = NF->createBlock(BB->name());
    Map.Blocks[BB.get()] = NB;
    for (const auto &I : BB->instructions()) {
      const bool IsPhi = I->opcode() == Opcode::Phi;
      auto NI = std::make_unique<Instruction>(
          I->opcode(), I->name(),
          IsPhi ? std::vector<Value *>{} : I->operands());
      NI->setCalleeName(I->calleeName());
      NI->setQueueId(I->queueId());
      Map.Values[I.get()] = NB->append(std::move(NI));
    }
  }

  // Pass 2: remap operands, rebuild phi incoming lists, retarget branches.
  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = Map.block(BB.get());
    for (std::size_t P = 0; P < BB->size(); ++P) {
      const Instruction *OI = BB->instructions()[P].get();
      auto *NI = static_cast<Instruction *>(Map.Values.at(OI));
      if (OI->opcode() == Opcode::Phi) {
        for (unsigned In = 0; In < OI->numOperands(); ++In)
          NI->addIncoming(Map.value(OI->operand(In)),
                          Map.block(OI->incomingBlock(In)));
      } else {
        for (unsigned OpIdx = 0; OpIdx < NI->numOperands(); ++OpIdx)
          NI->setOperand(OpIdx, Map.value(OI->operand(OpIdx)));
      }
      if (OI->numSuccessors() > 0) {
        std::vector<BasicBlock *> Succs;
        for (unsigned S = 0; S < OI->numSuccessors(); ++S)
          Succs.push_back(Map.block(OI->successor(S)));
        NI->setSuccessors(std::move(Succs));
      }
      (void)NB;
    }
  }

  return NF;
}

//===- ir/Interp.cpp - Mini-IR interpreter --------------------------------==//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Casting.h"

using namespace cip;
using namespace cip::ir;

MemoryState::MemoryState(const Module &M) {
  for (const auto &A : M.arrays()) {
    Store.emplace(A.get(), std::vector<std::int64_t>(A->size(), 0));
    Order.push_back(A.get());
  }
}

std::int64_t MemoryState::load(const GlobalArray *A,
                               std::int64_t Index) const {
  const auto &Data = arrayData(A);
  assert(Index >= 0 &&
         static_cast<std::size_t>(Index) < Data.size() &&
         "load out of bounds");
  return Data[static_cast<std::size_t>(Index)];
}

void MemoryState::store(const GlobalArray *A, std::int64_t Index,
                        std::int64_t V) {
  auto &Data = arrayData(A);
  assert(Index >= 0 &&
         static_cast<std::size_t>(Index) < Data.size() &&
         "store out of bounds");
  Data[static_cast<std::size_t>(Index)] = V;
}

std::vector<std::int64_t> &MemoryState::arrayData(const GlobalArray *A) {
  auto It = Store.find(A);
  assert(It != Store.end() && "array not part of this memory state");
  return It->second;
}

const std::vector<std::int64_t> &
MemoryState::arrayData(const GlobalArray *A) const {
  auto It = Store.find(A);
  assert(It != Store.end() && "array not part of this memory state");
  return It->second;
}

std::uint64_t MemoryState::digest() const {
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (const GlobalArray *A : Order)
    for (std::int64_t V : arrayData(A)) {
      H ^= static_cast<std::uint64_t>(V);
      H *= 0x100000001b3ULL;
    }
  return H;
}

QueueBus::QueueBus(std::uint32_t NumQueues, std::size_t Capacity) {
  for (std::uint32_t I = 0; I < NumQueues; ++I)
    Queues.push_back(std::make_unique<SPSCQueue<std::int64_t>>(Capacity));
}

void QueueBus::produce(std::uint32_t Queue, std::int64_t V) {
  assert(Queue < Queues.size() && "queue id out of range");
  Queues[Queue]->produce(V);
}

std::int64_t QueueBus::consume(std::uint32_t Queue) {
  assert(Queue < Queues.size() && "queue id out of range");
  return Queues[Queue]->consume();
}

namespace {

class Frame {
public:
  std::int64_t get(const Value *V) const {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->value();
    auto It = Vals.find(V);
    assert(It != Vals.end() && "read of undefined SSA value");
    return It->second;
  }

  void set(const Value *V, std::int64_t X) { Vals[V] = X; }
  bool has(const Value *V) const { return Vals.count(V) != 0; }

private:
  std::unordered_map<const Value *, std::int64_t> Vals;
};

std::int64_t evalBinary(Opcode Op, std::int64_t L, std::int64_t R,
                        std::string &Error) {
  switch (Op) {
  case Opcode::Add:
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L) +
                                     static_cast<std::uint64_t>(R));
  case Opcode::Sub:
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L) -
                                     static_cast<std::uint64_t>(R));
  case Opcode::Mul:
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L) *
                                     static_cast<std::uint64_t>(R));
  case Opcode::Div:
    if (R == 0) {
      Error = "division by zero";
      return 0;
    }
    return L / R;
  case Opcode::Rem:
    if (R == 0) {
      Error = "remainder by zero";
      return 0;
    }
    return L % R;
  case Opcode::And:
    return L & R;
  case Opcode::Or:
    return L | R;
  case Opcode::Xor:
    return L ^ R;
  case Opcode::Shl:
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L)
                                     << (R & 63));
  case Opcode::Shr:
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L) >>
                                     (R & 63));
  case Opcode::CmpEQ:
    return L == R;
  case Opcode::CmpNE:
    return L != R;
  case Opcode::CmpLT:
    return L < R;
  case Opcode::CmpLE:
    return L <= R;
  case Opcode::CmpGT:
    return L > R;
  case Opcode::CmpGE:
    return L >= R;
  default:
    CIP_UNREACHABLE("not a binary opcode");
  }
}

} // namespace

InterpResult ir::interpret(const Function &F,
                           const std::vector<std::int64_t> &Args,
                           MemoryState &Mem, const InterpOptions &Options) {
  InterpResult Result;
  assert(Args.size() == F.numArgs() && "argument count mismatch");

  Frame Regs;
  for (unsigned I = 0; I < F.numArgs(); ++I)
    Regs.set(F.arg(I), Args[I]);

  const BasicBlock *Prev = nullptr;
  const BasicBlock *Block = F.entry();
  std::size_t IP = 0;

  while (true) {
    if (Result.ExecutedInsts >= Options.Fuel) {
      Result.Error = "out of fuel";
      return Result;
    }
    assert(IP < Block->size() && "fell off the end of a block");
    const Instruction &I = *Block->instructions()[IP];
    ++Result.ExecutedInsts;

    switch (I.opcode()) {
    case Opcode::Phi: {
      // Evaluate all leading phis against Prev atomically (classic
      // parallel-copy semantics): gather first, then commit.
      std::vector<std::pair<const Instruction *, std::int64_t>> Updates;
      std::size_t P = IP;
      while (P < Block->size() &&
             Block->instructions()[P]->opcode() == Opcode::Phi) {
        const Instruction &Phi = *Block->instructions()[P];
        bool Found = false;
        for (unsigned In = 0; In < Phi.numOperands(); ++In)
          if (Phi.incomingBlock(In) == Prev) {
            Updates.emplace_back(&Phi, Regs.get(Phi.operand(In)));
            Found = true;
            break;
          }
        if (!Found) {
          Result.Error = "phi '" + Phi.name() +
                         "' has no incoming value for predecessor";
          return Result;
        }
        ++P;
      }
      for (const auto &[Phi, V] : Updates)
        Regs.set(Phi, V);
      Result.ExecutedInsts += Updates.size() - 1;
      IP = P;
      continue;
    }
    case Opcode::Select:
      Regs.set(&I, Regs.get(I.operand(0)) ? Regs.get(I.operand(1))
                                          : Regs.get(I.operand(2)));
      break;
    case Opcode::Load: {
      const auto *A = cast<GlobalArray>(I.operand(0));
      const std::int64_t Index = Regs.get(I.operand(1));
      if (Index < 0 || static_cast<std::size_t>(Index) >= A->size()) {
        Result.Error = "load out of bounds on @" + A->name();
        return Result;
      }
      if (Options.AccessTrace)
        Options.AccessTrace(A, Index, /*IsStore=*/false);
      Regs.set(&I, Mem.load(A, Index));
      break;
    }
    case Opcode::Store: {
      const auto *A = cast<GlobalArray>(I.operand(0));
      const std::int64_t Index = Regs.get(I.operand(1));
      if (Index < 0 || static_cast<std::size_t>(Index) >= A->size()) {
        Result.Error = "store out of bounds on @" + A->name();
        return Result;
      }
      if (Options.AccessTrace)
        Options.AccessTrace(A, Index, /*IsStore=*/true);
      Mem.store(A, Index, Regs.get(I.operand(2)));
      break;
    }
    case Opcode::Br:
      Prev = Block;
      Block = I.successor(0);
      IP = 0;
      continue;
    case Opcode::CondBr:
      Prev = Block;
      Block = Regs.get(I.operand(0)) ? I.successor(0) : I.successor(1);
      IP = 0;
      continue;
    case Opcode::Ret:
      Result.Completed = true;
      if (I.numOperands() == 1)
        Result.ReturnValue = Regs.get(I.operand(0));
      return Result;
    case Opcode::Call: {
      auto It = Options.Natives.find(I.calleeName());
      if (It == Options.Natives.end()) {
        Result.Error = "call to unknown native '" + I.calleeName() + "'";
        return Result;
      }
      std::vector<std::int64_t> CallArgs;
      CallArgs.reserve(I.numOperands());
      for (unsigned A = 0; A < I.numOperands(); ++A)
        CallArgs.push_back(Regs.get(I.operand(A)));
      Regs.set(&I, It->second(CallArgs));
      break;
    }
    case Opcode::Produce:
      assert(Options.Bus && "produce without a queue bus");
      Options.Bus->produce(I.queueId(), Regs.get(I.operand(0)));
      break;
    case Opcode::Consume:
      assert(Options.Bus && "consume without a queue bus");
      Regs.set(&I, Options.Bus->consume(I.queueId()));
      break;
    default:
      std::string Error;
      const std::int64_t V = evalBinary(I.opcode(), Regs.get(I.operand(0)),
                                        Regs.get(I.operand(1)), Error);
      if (!Error.empty()) {
        Result.Error = Error + " in '" + I.name() + "'";
        return Result;
      }
      Regs.set(&I, V);
      break;
    }
    ++IP;
  }
}

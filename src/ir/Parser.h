//===- ir/Parser.h - Textual IR parsing ------------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by ir/IRPrinter.h back into a Module,
/// closing the round trip print(parse(text)) == text. Module-level syntax
/// adds array declarations:
///
///   array @C[64]
///   func @cg() {
///   entry:
///     br label header
///   header:
///     %i = phi 0 [entry], %i.next [latch]
///     ...
///   }
///
/// Value references may appear before their definitions (phis routinely
/// do); the parser materializes instruction shells first and resolves
/// operands in a second pass, like the cloner.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_PARSER_H
#define CIP_IR_PARSER_H

#include "ir/IR.h"

#include <memory>
#include <string>

namespace cip {
namespace ir {

/// Result of parsing: the module, or a diagnostic.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error; // empty on success
  unsigned ErrorLine = 0;

  bool ok() const { return Error.empty(); }
};

/// Parses \p Text as a module. Never throws; reports the first error with
/// its 1-based line number.
ParseResult parseModule(const std::string &Text);

} // namespace ir
} // namespace cip

#endif // CIP_IR_PARSER_H

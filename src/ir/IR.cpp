//===- ir/IR.cpp - Mini-IR core classes ----------------------------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

using namespace cip;
using namespace cip::ir;

Value::~Value() = default;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::Select:
    return "select";
  case Opcode::Phi:
    return "phi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::Produce:
    return "produce";
  case Opcode::Consume:
    return "consume";
  }
  CIP_UNREACHABLE("unknown opcode");
}

Function::Function(std::string Name, Module *Parent, unsigned NumArgs)
    : Name(std::move(Name)), Parent(Parent) {
  Args.reserve(NumArgs);
  for (unsigned I = 0; I < NumArgs; ++I)
    Args.push_back(
        std::make_unique<Argument>("arg" + std::to_string(I), I));
}

Constant *Module::getConstant(std::int64_t V) {
  for (const auto &C : Constants)
    if (C->value() == V)
      return C.get();
  Constants.push_back(std::make_unique<Constant>(V));
  return Constants.back().get();
}

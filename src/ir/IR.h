//===- ir/IR.h - Mini-IR core classes --------------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small SSA intermediate representation standing in for the LLVM IR the
/// paper's compiler operates on. It is deliberately minimal — one 64-bit
/// integer value type, named global arrays for memory — but structurally
/// faithful: functions of basic blocks of instructions, phi nodes, explicit
/// loads/stores with array+index addressing, conditional branches, calls,
/// and the produce/consume communication primitives the DOMORE MTCG
/// transformation inserts (§3.3.2). The analyses (CFG, dominators, loop
/// forest, PDG) and transformations (partitioning, slicing, MTCG, region
/// planning) in src/analysis and src/transform all operate on this IR, and
/// the interpreter in ir/Interp.h executes it — including multi-threaded
/// execution of MTCG-produced scheduler/worker pairs.
///
/// LLVM-style RTTI: every Value carries a ValueKind and classof() methods;
/// use isa<>/cast<>/dyn_cast<> from ir/Casting.h.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_IR_IR_H
#define CIP_IR_IR_H

#include "support/Compiler.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cip {
namespace ir {

class BasicBlock;
class Function;
class Module;

/// Root of the value hierarchy.
class Value {
public:
  enum ValueKind {
    VK_Constant,
    VK_Argument,
    VK_GlobalArray,
    VK_Instruction,
  };

  Value(ValueKind Kind, std::string Name)
      : Kind(Kind), Name(std::move(Name)) {}
  virtual ~Value();

  ValueKind kind() const { return Kind; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

private:
  const ValueKind Kind;
  std::string Name;
};

/// A 64-bit integer constant, uniqued by the Module.
class Constant final : public Value {
public:
  explicit Constant(std::int64_t V)
      : Value(VK_Constant, std::to_string(V)), Val(V) {}

  std::int64_t value() const { return Val; }

  static bool classof(const Value *V) { return V->kind() == VK_Constant; }

private:
  const std::int64_t Val;
};

/// A formal parameter of a Function.
class Argument final : public Value {
public:
  Argument(std::string Name, unsigned Index)
      : Value(VK_Argument, std::move(Name)), Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Value *V) { return V->kind() == VK_Argument; }

private:
  const unsigned Index;
};

/// A named global array of 64-bit integers — the only form of memory.
class GlobalArray final : public Value {
public:
  GlobalArray(std::string Name, std::size_t Size)
      : Value(VK_GlobalArray, std::move(Name)), Size(Size) {}

  std::size_t size() const { return Size; }

  static bool classof(const Value *V) { return V->kind() == VK_GlobalArray; }

private:
  const std::size_t Size;
};

/// Instruction opcodes. Produce/Consume/ConsumeToken are the queue
/// primitives MTCG inserts; Call invokes a registered native function.
enum class Opcode {
  // Arithmetic / logic (two operands).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons (two operands, produce 0/1).
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Select(cond, a, b).
  Select,
  // Phi: operands are incoming values; incoming blocks tracked separately.
  Phi,
  // Load(array, index) -> value; Store(array, index, value).
  Load,
  Store,
  // Br(target) / CondBr(cond, ifTrue, ifFalse) / Ret(value?).
  Br,
  CondBr,
  Ret,
  // Call(callee name; operands are arguments) -> value.
  Call,
  // Produce(queueId, value): enqueue. Consume(queueId) -> value.
  Produce,
  Consume,
};

/// Returns a human-readable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// An SSA instruction. Operand lists are owned as raw pointers into the
/// Module's value tables (the Module owns all Values).
class Instruction final : public Value {
public:
  Instruction(Opcode Op, std::string Name, std::vector<Value *> Operands)
      : Value(VK_Instruction, std::move(Name)), Op(Op),
        Operands(std::move(Operands)) {}

  Opcode opcode() const { return Op; }

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  /// Appends an operand to a non-phi instruction (phis use addIncoming).
  void addOperand(Value *V) {
    assert(Op != Opcode::Phi && "use addIncoming for phi operands");
    Operands.push_back(V);
  }
  const std::vector<Value *> &operands() const { return Operands; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Phi bookkeeping: incoming block for operand \p I.
  BasicBlock *incomingBlock(unsigned I) const {
    assert(Op == Opcode::Phi && I < Incoming.size() && "not a phi operand");
    return Incoming[I];
  }
  void addIncoming(Value *V, BasicBlock *BB) {
    assert(Op == Opcode::Phi && "addIncoming on non-phi");
    Operands.push_back(V);
    Incoming.push_back(BB);
  }

  /// Redirects phi incoming edges from \p Old to \p New (edge splitting).
  void replaceIncomingBlock(BasicBlock *Old, BasicBlock *New) {
    assert(Op == Opcode::Phi && "replaceIncomingBlock on non-phi");
    for (BasicBlock *&BB : Incoming)
      if (BB == Old)
        BB = New;
  }

  /// Branch targets (Br: 1, CondBr: 2, others: 0).
  BasicBlock *successor(unsigned I) const {
    assert(I < Successors.size() && "successor index out of range");
    return Successors[I];
  }
  unsigned numSuccessors() const {
    return static_cast<unsigned>(Successors.size());
  }
  void setSuccessors(std::vector<BasicBlock *> Succs) {
    Successors = std::move(Succs);
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < Successors.size() && "successor index out of range");
    Successors[I] = BB;
  }

  /// Callee name for Call instructions; queue id for Produce/Consume.
  const std::string &calleeName() const { return Callee; }
  void setCalleeName(std::string N) { Callee = std::move(N); }
  std::uint32_t queueId() const { return QueueId; }
  void setQueueId(std::uint32_t Q) { QueueId = Q; }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }
  bool isBranch() const { return Op == Opcode::Br || Op == Opcode::CondBr; }
  bool mayReadMemory() const { return Op == Opcode::Load; }
  bool mayWriteMemory() const { return Op == Opcode::Store; }
  bool accessesMemory() const { return mayReadMemory() || mayWriteMemory(); }
  /// True if the instruction produces an SSA value usable by others.
  bool producesValue() const {
    return !isTerminator() && Op != Opcode::Store && Op != Opcode::Produce;
  }

  static bool classof(const Value *V) { return V->kind() == VK_Instruction; }

private:
  const Opcode Op;
  std::vector<Value *> Operands;
  std::vector<BasicBlock *> Incoming; // phi only, parallel to Operands
  std::vector<BasicBlock *> Successors;
  BasicBlock *Parent = nullptr;
  std::string Callee;
  std::uint32_t QueueId = 0;
};

/// A basic block: a named list of instructions ending in one terminator.
class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Inserts \p I before position \p Pos (0-based).
  Instruction *insert(std::size_t Pos, std::unique_ptr<Instruction> I) {
    assert(Pos <= Insts.size() && "insert position out of range");
    I->setParent(this);
    auto It = Insts.insert(Insts.begin() + static_cast<std::ptrdiff_t>(Pos),
                           std::move(I));
    return It->get();
  }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  /// Removes and destroys the instruction at position \p Pos. The caller
  /// must have eliminated all uses first.
  void erase(std::size_t Pos) {
    assert(Pos < Insts.size() && "erase position out of range");
    Insts.erase(Insts.begin() + static_cast<std::ptrdiff_t>(Pos));
  }

  Instruction *terminator() const {
    return Insts.empty() || !Insts.back()->isTerminator()
               ? nullptr
               : Insts.back().get();
  }

  bool empty() const { return Insts.empty(); }
  std::size_t size() const { return Insts.size(); }

  /// Position of \p I within the block, or size() if absent.
  std::size_t positionOf(const Instruction *I) const {
    for (std::size_t P = 0; P < Insts.size(); ++P)
      if (Insts[P].get() == I)
        return P;
    return Insts.size();
  }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

/// A function: an entry block plus the rest, and formal arguments.
class Function {
public:
  Function(std::string Name, Module *Parent, unsigned NumArgs);

  const std::string &name() const { return Name; }
  Module *parent() const { return Parent; }

  BasicBlock *createBlock(std::string BlockName) {
    Blocks.push_back(
        std::make_unique<BasicBlock>(std::move(BlockName), this));
    return Blocks.back().get();
  }

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  Argument *arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }

private:
  std::string Name;
  Module *Parent;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<std::unique_ptr<Argument>> Args;
};

/// Top-level container owning functions, arrays, and uniqued constants.
class Module {
public:
  Function *createFunction(std::string Name, unsigned NumArgs) {
    Functions.push_back(
        std::make_unique<Function>(std::move(Name), this, NumArgs));
    return Functions.back().get();
  }

  Function *getFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  GlobalArray *createArray(std::string Name, std::size_t Size) {
    Arrays.push_back(std::make_unique<GlobalArray>(std::move(Name), Size));
    return Arrays.back().get();
  }

  GlobalArray *getArray(const std::string &Name) const {
    for (const auto &A : Arrays)
      if (A->name() == Name)
        return A.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<GlobalArray>> &arrays() const {
    return Arrays;
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Returns the uniqued constant for \p V.
  Constant *getConstant(std::int64_t V);

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalArray>> Arrays;
  std::vector<std::unique_ptr<Constant>> Constants;
};

} // namespace ir
} // namespace cip

#endif // CIP_IR_IR_H

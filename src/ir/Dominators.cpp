//===- ir/Dominators.cpp - Dominator and post-dominator trees ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "ir/Casting.h"

#include <algorithm>

using namespace cip;
using namespace cip::ir;

namespace {

/// The CHK "intersect" walk over finger indices.
unsigned intersect(unsigned A, unsigned B,
                   const std::vector<unsigned> &IDomIdx) {
  while (A != B) {
    while (A > B)
      A = IDomIdx[A];
    while (B > A)
      B = IDomIdx[B];
  }
  return A;
}

} // namespace

DominatorTree::DominatorTree(const CFG &G, bool Post) : IsPost(Post) {
  // Build the order and edge function for the chosen direction. For the
  // post-dominator tree we walk the reverse CFG rooted at the unique exit.
  std::vector<BasicBlock *> Order; // root first
  if (!Post) {
    Order = G.reversePostOrder();
  } else {
    // Find the unique exit (block whose terminator is Ret).
    BasicBlock *Exit = nullptr;
    for (BasicBlock *BB : G.reversePostOrder()) {
      const Instruction *T = BB->terminator();
      if (T && T->opcode() == Opcode::Ret) {
        assert(!Exit && "post-dominators require a unique exit block");
        Exit = BB;
      }
    }
    assert(Exit && "post-dominators require a reachable Ret block");
    // Post-order over the reverse graph from the exit, then reverse it.
    std::vector<BasicBlock *> PostOrder;
    std::unordered_map<const BasicBlock *, unsigned> State;
    std::vector<std::pair<BasicBlock *, unsigned>> Stack;
    Stack.emplace_back(Exit, 0);
    State[Exit] = 1;
    while (!Stack.empty()) {
      auto &[BB, Next] = Stack.back();
      const auto &Preds = G.predecessors(BB);
      if (Next < Preds.size()) {
        BasicBlock *P = Preds[Next++];
        if (!State.count(P)) {
          State[P] = 1;
          Stack.emplace_back(P, 0);
        }
      } else {
        PostOrder.push_back(BB);
        Stack.pop_back();
      }
    }
    Order.assign(PostOrder.rbegin(), PostOrder.rend());
  }

  if (Order.empty())
    return;
  Root = Order.front();

  std::unordered_map<const BasicBlock *, unsigned> Index;
  for (unsigned I = 0; I < Order.size(); ++I)
    Index[Order[I]] = I;

  // Iterate to a fixed point (CHK Fig. 3).
  std::vector<unsigned> IDomIdx(Order.size(), ~0u);
  IDomIdx[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I < Order.size(); ++I) {
      const auto &Edges =
          Post ? G.successors(Order[I]) : G.predecessors(Order[I]);
      unsigned NewIDom = ~0u;
      for (BasicBlock *E : Edges) {
        auto It = Index.find(E);
        if (It == Index.end() || IDomIdx[It->second] == ~0u)
          continue;
        NewIDom = NewIDom == ~0u ? It->second
                                 : intersect(NewIDom, It->second, IDomIdx);
      }
      if (NewIDom != ~0u && IDomIdx[I] != NewIDom) {
        IDomIdx[I] = NewIDom;
        Changed = true;
      }
    }
  }

  for (unsigned I = 1; I < Order.size(); ++I)
    if (IDomIdx[I] != ~0u)
      IDom[Order[I]] = Order[IDomIdx[I]];
  IDom[Root] = nullptr;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  for (const BasicBlock *X = B; X; X = idom(X))
    if (X == A)
      return true;
  return false;
}

//===- support/Stats.h - Small statistics helpers --------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean/geomean/min helpers used when the benchmark harness aggregates
/// speedups. The dissertation reports geomean speedups (2.1x, 3.2x, 4.6x,
/// 1.3x); the same aggregation is used here so EXPERIMENTS.md numbers are
/// directly comparable in kind.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_STATS_H
#define CIP_SUPPORT_STATS_H

#include "support/Compiler.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cip {

/// Arithmetic mean; returns 0 for an empty sample.
inline double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

/// Geometric mean; every sample must be strictly positive.
inline double geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs) {
    assert(X > 0.0 && "geomean requires positive samples");
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

/// Minimum of a non-empty sample.
inline double minOf(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "min of empty sample");
  return *std::min_element(Xs.begin(), Xs.end());
}

/// Median of a non-empty sample (copies; fine for harness-sized vectors).
inline double median(std::vector<double> Xs) {
  assert(!Xs.empty() && "median of empty sample");
  std::sort(Xs.begin(), Xs.end());
  const std::size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return 0.5 * (Xs[N / 2 - 1] + Xs[N / 2]);
}

} // namespace cip

#endif // CIP_SUPPORT_STATS_H

//===- support/Stats.h - Small statistics helpers --------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean/geomean/min helpers used when the benchmark harness aggregates
/// speedups. The dissertation reports geomean speedups (2.1x, 3.2x, 4.6x,
/// 1.3x); the same aggregation is used here so EXPERIMENTS.md numbers are
/// directly comparable in kind.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_STATS_H
#define CIP_SUPPORT_STATS_H

#include "support/Compiler.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cip {

/// Arithmetic mean; returns 0 for an empty sample.
inline double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

/// Geometric mean over the strictly positive samples of \p Xs. Non-positive
/// samples carry no log-domain meaning (a zero or negative "speedup" is a
/// measurement error upstream), so they are skipped rather than poisoning
/// the whole aggregate; returns 0 when no positive sample remains.
inline double geomean(const std::vector<double> &Xs) {
  double LogSum = 0.0;
  std::size_t N = 0;
  for (double X : Xs) {
    if (X <= 0.0)
      continue;
    LogSum += std::log(X);
    ++N;
  }
  if (N == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(N));
}

/// Minimum of a sample; returns 0 for an empty sample.
inline double minOf(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  return *std::min_element(Xs.begin(), Xs.end());
}

/// Median of a sample (copies; fine for harness-sized vectors); returns 0
/// for an empty sample.
inline double median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0.0;
  std::sort(Xs.begin(), Xs.end());
  const std::size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return 0.5 * (Xs[N / 2 - 1] + Xs[N / 2]);
}

} // namespace cip

#endif // CIP_SUPPORT_STATS_H

//===- support/Timer.h - Monotonic wall-clock timing -----------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing helpers used by the benchmark harness. All speedup
/// numbers reported by the `bench/` binaries are ratios of wall-clock times
/// measured with these helpers, matching how the dissertation reports "loop
/// speedup over best sequential execution".
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_TIMER_H
#define CIP_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace cip {

/// Returns a monotonic timestamp in nanoseconds.
inline std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/stop stopwatch accumulating elapsed nanoseconds.
class Stopwatch {
public:
  void start() { StartNs = nowNanos(); }

  /// Stops the watch and adds the interval since start() to the total.
  void stop() { TotalNs += nowNanos() - StartNs; }

  void reset() { TotalNs = 0; }

  std::uint64_t elapsedNanos() const { return TotalNs; }
  double elapsedSeconds() const { return static_cast<double>(TotalNs) * 1e-9; }

private:
  std::uint64_t StartNs = 0;
  std::uint64_t TotalNs = 0;
};

/// Times a single call of \p Fn and returns elapsed seconds.
template <typename Callable> double timeSeconds(Callable &&Fn) {
  const std::uint64_t Begin = nowNanos();
  Fn();
  return static_cast<double>(nowNanos() - Begin) * 1e-9;
}

} // namespace cip

#endif // CIP_SUPPORT_TIMER_H

//===- support/VectorFifo.h - Allocation-stable FIFO -----------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-threaded FIFO over a recycled std::vector. The SPECCROSS
/// checker buffers deferred checking requests in per-worker pending lists;
/// std::deque churns a heap block every few elements under the steady
/// push/pop pattern, which on this machine degenerates into heap-trim
/// syscalls costing ~16us per element (measured). This FIFO never releases
/// capacity in steady state: pops advance a head index, and fully-drained
/// or mostly-drained storage is compacted in place.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_VECTORFIFO_H
#define CIP_SUPPORT_VECTORFIFO_H

#include "support/Compiler.h"

#include <utility>
#include <vector>

namespace cip {

/// See file comment.
template <typename T> class VectorFifo {
public:
  bool empty() const { return Head == Items.size(); }
  std::size_t size() const { return Items.size() - Head; }

  void push(T Value) { Items.push_back(std::move(Value)); }

  T &front() {
    assert(!empty() && "front() of empty fifo");
    return Items[Head];
  }

  void pop() {
    assert(!empty() && "pop() of empty fifo");
    ++Head;
    if (Head == Items.size()) {
      // Fully drained: recycle the storage without releasing it.
      Items.clear();
      Head = 0;
    } else if (Head >= CompactionThreshold && Head * 2 >= Items.size()) {
      Items.erase(Items.begin(),
                  Items.begin() + static_cast<std::ptrdiff_t>(Head));
      Head = 0;
    }
  }

private:
  static constexpr std::size_t CompactionThreshold = 1024;

  std::vector<T> Items;
  std::size_t Head = 0;
};

} // namespace cip

#endif // CIP_SUPPORT_VECTORFIFO_H

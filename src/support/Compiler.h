//===- support/Compiler.h - Portability and hint macros --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.,
// "Automatically Exploiting Cross-Invocation Parallelism Using Runtime
// Information" (CGO 2013 / Princeton dissertation).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros shared by every library in the project. The
/// project follows the LLVM coding standards: no exceptions or RTTI inside
/// library code, asserts used liberally, and unreachable paths marked with
/// \c CIP_UNREACHABLE.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_COMPILER_H
#define CIP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define CIP_LIKELY(X) __builtin_expect(!!(X), 1)
#define CIP_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define CIP_NOINLINE __attribute__((noinline))
#define CIP_ALWAYS_INLINE inline __attribute__((always_inline))
/// Read-prefetch hint for pointer \p P: starts the cache fill now so a
/// dependent load issued a few hundred instructions later hits. The pipelined
/// shadow-memory probe stage leans on this for memory-level parallelism.
#define CIP_PREFETCH(P) __builtin_prefetch((P), 0, 1)
#else
#define CIP_LIKELY(X) (X)
#define CIP_UNLIKELY(X) (X)
#define CIP_NOINLINE
#define CIP_ALWAYS_INLINE inline
#define CIP_PREFETCH(P)                                                        \
  do {                                                                         \
  } while (false)
#endif

/// Marks a point in code that must never be reached. Prints a diagnostic and
/// aborts; in optimized builds the compiler may assume the point is dead.
#define CIP_UNREACHABLE(MSG)                                                   \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, MSG);                                               \
    std::abort();                                                              \
  } while (false)

/// Marks a function whose memory accesses are *intentionally* racy under
/// speculative execution and therefore excluded from ThreadSanitizer
/// instrumentation. SPECCROSS runs tasks of different epochs concurrently
/// without synchronizing their workload accesses — conflicts are detected
/// after the fact by signature comparison and undone by checkpoint
/// rollback, so a C++-level data race on workload state is the documented
/// execution model, not a bug. Apply this ONLY to workload task bodies
/// whose final state an oracle independently verifies (checksum vs
/// sequential execution); never to runtime/protocol code, which must stay
/// fully instrumented.
#if defined(__SANITIZE_THREAD__)
#define CIP_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CIP_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define CIP_NO_SANITIZE_THREAD
#endif
#else
#define CIP_NO_SANITIZE_THREAD
#endif

/// Runtime invariant checks on the runtimes' protocol state (monotone
/// progress publication, epoch-ordered clocks, ...). Active in debug builds
/// like assert, but independently switchable: -DCIP_CHECK_ENABLED=1 (the
/// CIP_CHECK CMake option) keeps them alive in optimized fuzz/sanitizer
/// builds, where an invariant tripping milliseconds before the memory-state
/// divergence it causes is worth far more than the same failure surfacing
/// as an opaque oracle mismatch.
#ifndef CIP_CHECK_ENABLED
#ifdef NDEBUG
#define CIP_CHECK_ENABLED 0
#else
#define CIP_CHECK_ENABLED 1
#endif
#endif

#if CIP_CHECK_ENABLED
#define CIP_CHECK(COND, MSG)                                                   \
  do {                                                                         \
    if (CIP_UNLIKELY(!(COND))) {                                               \
      std::fprintf(stderr, "CIP_CHECK failed at %s:%d: %s: %s\n", __FILE__,    \
                   __LINE__, #COND, MSG);                                      \
      std::abort();                                                            \
    }                                                                          \
  } while (false)
#else
#define CIP_CHECK(COND, MSG)                                                   \
  do {                                                                         \
  } while (false)
#endif

namespace cip {

/// Size, in bytes, assumed for a destructive-interference-free alignment.
/// Used to pad per-thread state so that scheduler/worker communication does
/// not false-share cache lines (the paper's runtime engine is sensitive to
/// this; see §3.2.3 of the dissertation).
inline constexpr std::size_t CacheLineBytes = 64;

} // namespace cip

#endif // CIP_SUPPORT_COMPILER_H

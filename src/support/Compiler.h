//===- support/Compiler.h - Portability and hint macros --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.,
// "Automatically Exploiting Cross-Invocation Parallelism Using Runtime
// Information" (CGO 2013 / Princeton dissertation).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros shared by every library in the project. The
/// project follows the LLVM coding standards: no exceptions or RTTI inside
/// library code, asserts used liberally, and unreachable paths marked with
/// \c CIP_UNREACHABLE.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_COMPILER_H
#define CIP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define CIP_LIKELY(X) __builtin_expect(!!(X), 1)
#define CIP_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define CIP_NOINLINE __attribute__((noinline))
#define CIP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define CIP_LIKELY(X) (X)
#define CIP_UNLIKELY(X) (X)
#define CIP_NOINLINE
#define CIP_ALWAYS_INLINE inline
#endif

/// Marks a point in code that must never be reached. Prints a diagnostic and
/// aborts; in optimized builds the compiler may assume the point is dead.
#define CIP_UNREACHABLE(MSG)                                                   \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, MSG);                                               \
    std::abort();                                                              \
  } while (false)

namespace cip {

/// Size, in bytes, assumed for a destructive-interference-free alignment.
/// Used to pad per-thread state so that scheduler/worker communication does
/// not false-share cache lines (the paper's runtime engine is sensitive to
/// this; see §3.2.3 of the dissertation).
inline constexpr std::size_t CacheLineBytes = 64;

} // namespace cip

#endif // CIP_SUPPORT_COMPILER_H

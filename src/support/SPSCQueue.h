//===- support/SPSCQueue.h - Lock-free SPSC ring buffer --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, lock-free, single-producer/single-consumer queue. This is the
/// communication primitive the DOMORE runtime uses to forward
/// synchronization conditions from the scheduler thread to each worker
/// thread (dissertation §3.2.3, citing the lock-free queue design of
/// Giacomoni et al.). The design separates the producer and consumer cursors
/// onto distinct cache lines and caches the opposing cursor locally so the
/// common path touches a single shared line per batch.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_SPSCQUEUE_H
#define CIP_SUPPORT_SPSCQUEUE_H

#include "support/Backoff.h"
#include "support/Chaos.h"
#include "support/Compiler.h"

#include <atomic>
#include <bit>
#include <cstddef>
#include <limits>
#include <type_traits>
#include <vector>

namespace cip {

/// Bounded single-producer/single-consumer FIFO.
///
/// \tparam T element type; must be trivially copyable or cheaply copyable —
/// elements are copied in and out by value (the single-element operations
/// tolerate any copyable type; the batch operations additionally require
/// trivial copyability, see below). Capacity is rounded up to a power of
/// two. produce() spins when the queue is full and consume() spins when it
/// is empty, mirroring the blocking produce/consume primitives the
/// generated scheduler/worker code calls. Non-blocking
/// tryProduce/tryConsume variants are provided for tests and for the
/// checker thread's polling loop; tryProduceBatch/consumeAvailable move
/// whole runs of elements per cursor update so the hot DOMORE dispatch
/// path pays one release store per batch instead of one per message.
template <typename T> class SPSCQueue {
public:
  explicit SPSCQueue(std::size_t MinCapacity = 1024)
      : Mask(roundUpPow2(MinCapacity) - 1), Ring(Mask + 1) {}

  SPSCQueue(const SPSCQueue &) = delete;
  SPSCQueue &operator=(const SPSCQueue &) = delete;

  /// Enqueues \p Value, spinning while the queue is full. Producer-only.
  void produce(T Value) {
    Backoff B;
    while (!tryProduce(Value))
      B.pause();
  }

  /// Attempts to enqueue \p Value; returns false if the queue is full.
  bool tryProduce(const T &Value) {
    const std::size_t Head = HeadCursor.load(std::memory_order_relaxed);
    if (Head - CachedTail > Mask) {
      CachedTail = TailCursor.load(std::memory_order_acquire);
      if (Head - CachedTail > Mask)
        return false;
    }
    Ring[Head & Mask] = Value;
    // Stretch the slot-write -> cursor-publish window: a consumer must never
    // observe the cursor before the element it covers.
    CIP_CHAOS_POINT(QueueProduce);
    HeadCursor.store(Head + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues one element, spinning while the queue is empty. Consumer-only.
  T consume() {
    T Value;
    Backoff B;
    while (!tryConsume(Value))
      B.pause();
    return Value;
  }

  /// Attempts to dequeue into \p Out; returns false if the queue is empty.
  bool tryConsume(T &Out) {
    const std::size_t Tail = TailCursor.load(std::memory_order_relaxed);
    if (Tail == CachedHead) {
      CachedHead = HeadCursor.load(std::memory_order_acquire);
      if (Tail == CachedHead)
        return false;
    }
    Out = Ring[Tail & Mask];
    // Stretch the element-read -> cursor-release window: the producer must
    // never overwrite a slot the consumer is still reading.
    CIP_CHAOS_POINT(QueueConsume);
    TailCursor.store(Tail + 1, std::memory_order_release);
    return true;
  }

  /// Enqueues up to \p N elements from \p Items with a single release
  /// cursor store; the consumer observes either nothing or a whole prefix
  /// of the batch. Returns the number enqueued: min(N, free slots),
  /// possibly 0 when full. Producer-only.
  std::size_t tryProduceBatch(const T *Items, std::size_t N) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "batch transfers copy raw element runs");
    const std::size_t Head = HeadCursor.load(std::memory_order_relaxed);
    std::size_t Free = Mask + 1 - (Head - CachedTail);
    if (Free < N) {
      CachedTail = TailCursor.load(std::memory_order_acquire);
      Free = Mask + 1 - (Head - CachedTail);
      if (Free == 0)
        return 0;
    }
    const std::size_t K = N < Free ? N : Free;
    for (std::size_t I = 0; I < K; ++I)
      Ring[(Head + I) & Mask] = Items[I];
    CIP_CHAOS_POINT(QueueProduce);
    HeadCursor.store(Head + K, std::memory_order_release);
    return K;
  }

  /// Dequeues up to \p Max elements into \p Out with a single release
  /// cursor store. Returns the number dequeued: min(Max, available),
  /// possibly 0 when empty. Consumer-only.
  std::size_t consumeAvailable(T *Out, std::size_t Max) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "batch transfers copy raw element runs");
    const std::size_t Tail = TailCursor.load(std::memory_order_relaxed);
    std::size_t Avail = CachedHead - Tail;
    if (Avail == 0) {
      CachedHead = HeadCursor.load(std::memory_order_acquire);
      Avail = CachedHead - Tail;
      if (Avail == 0)
        return 0;
    }
    const std::size_t K = Max < Avail ? Max : Avail;
    for (std::size_t I = 0; I < K; ++I)
      Out[I] = Ring[(Tail + I) & Mask];
    CIP_CHAOS_POINT(QueueConsume);
    TailCursor.store(Tail + K, std::memory_order_release);
    return K;
  }

  /// Returns true if the queue appears empty. Only a hint under concurrency.
  bool empty() const {
    return TailCursor.load(std::memory_order_acquire) ==
           HeadCursor.load(std::memory_order_acquire);
  }

  /// Returns the number of queued elements. Only a hint under concurrency.
  std::size_t size() const {
    return HeadCursor.load(std::memory_order_acquire) -
           TailCursor.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return Mask + 1; }

  /// Architectural pause for spin loops; keeps hyperthread siblings honest.
  static void spinPause() { Backoff::cpuRelax(); }

  /// Smallest power of two >= \p N, clamped to [1, 2^(bits-1)]: 0 and 1
  /// both round to 1, and requests beyond the largest representable power
  /// of two saturate there instead of overflowing (the allocation for such
  /// a ring fails upstream anyway). Public so the capacity contract is
  /// directly testable.
  static constexpr std::size_t roundUpPow2(std::size_t N) {
    constexpr std::size_t MaxPow2 = std::size_t{1}
                                    << (std::numeric_limits<std::size_t>::digits
                                        - 1);
    if (N <= 1)
      return 1;
    if (N > MaxPow2)
      return MaxPow2;
    return std::size_t{1} << std::bit_width(N - 1);
  }

private:
  const std::size_t Mask;
  std::vector<T> Ring;

  alignas(CacheLineBytes) std::atomic<std::size_t> HeadCursor{0};
  // Producer-local cache of the consumer cursor (same line as producer data).
  std::size_t CachedTail = 0;

  alignas(CacheLineBytes) std::atomic<std::size_t> TailCursor{0};
  // Consumer-local cache of the producer cursor.
  std::size_t CachedHead = 0;
};

} // namespace cip

#endif // CIP_SUPPORT_SPSCQUEUE_H

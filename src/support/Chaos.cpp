//===- support/Chaos.cpp - Schedule-chaos injection hooks ----------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "support/Chaos.h"

#include "support/Backoff.h"
#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace cip;
using namespace cip::chaos;

bool chaos::compiledIn() { return CIP_CHAOS != 0; }

const char *chaos::siteName(Site S) {
  switch (S) {
  case Site::QueueProduce:
    return "queue-produce";
  case Site::QueueConsume:
    return "queue-consume";
  case Site::ProgressPublish:
    return "progress-publish";
  case Site::ProgressWait:
    return "progress-wait";
  case Site::Dispatch:
    return "dispatch";
  case Site::BarrierArrive:
    return "barrier-arrive";
  case Site::PoolHandoff:
    return "pool-handoff";
  case Site::ClockPublish:
    return "clock-publish";
  case Site::SignatureLog:
    return "signature-log";
  case Site::CheckerPoll:
    return "checker-poll";
  case Site::ThrottleSpin:
    return "throttle-spin";
  case Site::Snapshot:
    return "snapshot";
  case Site::Restore:
    return "restore";
  case Site::FaultRecord:
    return "fault-record";
  case Site::SnapshotCommit:
    return "snapshot-commit";
  case Site::PolicyDecide:
    return "policy-decide";
  case Site::PolicySwitch:
    return "policy-switch";
  case Site::ServerAdmit:
    return "server-admit";
  case Site::ServerRelease:
    return "server-release";
  case Site::ShardMerge:
    return "shard-merge";
  case Site::TeamProbe:
    return "team-probe";
  case Site::CheckCommit:
    return "check-commit";
  case Site::NumSites:
    break;
  }
  CIP_UNREACHABLE("unknown chaos site");
}

#if CIP_CHAOS

namespace {

/// Process-wide injection schedule. Generation bumps tell threads their
/// cached stream is stale; configure() is only called while the runtimes
/// are quiescent, so the Seed/Generation pair needs no joint atomicity.
std::atomic<std::uint64_t> GlobalSeed{0};
std::atomic<std::uint64_t> Generation{0};
std::atomic<std::uint64_t> Injections{0};
std::atomic<std::uint64_t> NextOrdinal{0};

std::uint64_t envSeed() {
  const char *S = std::getenv("CIP_CHAOS");
  if (!S || !*S)
    return 0;
  char *End = nullptr;
  const unsigned long long N = std::strtoull(S, &End, 10);
  if (!End || *End != '\0') {
    std::fprintf(stderr,
                 "error: CIP_CHAOS='%s' is invalid: expected a decimal seed "
                 "(0 disables injection)\n",
                 S);
    // _Exit, not exit: the first probe may run on a pool lane while other
    // threads are live, and running atexit/destructors from here trips
    // std::terminate. A config error wants immediate, clean-status death.
    std::_Exit(2);
  }
  return static_cast<std::uint64_t>(N);
}

/// One-time env pickup, forced before main spawns any runtime thread by the
/// first configure()/enabled()/point() call.
std::uint64_t initFromEnv() {
  static const bool Done = [] {
    GlobalSeed.store(envSeed(), std::memory_order_relaxed);
    return true;
  }();
  (void)Done;
  return GlobalSeed.load(std::memory_order_acquire);
}

struct ThreadChaos {
  std::uint64_t Gen = ~std::uint64_t{0};
  std::uint64_t Ordinal = ~std::uint64_t{0};
  ChaosStream Stream{0, 0};
};

thread_local ThreadChaos TLS;

} // namespace

void chaos::configure(std::uint64_t Seed) {
  initFromEnv();
  GlobalSeed.store(Seed, std::memory_order_relaxed);
  Injections.store(0, std::memory_order_relaxed);
  Generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t chaos::currentSeed() { return initFromEnv(); }

bool chaos::enabled() { return initFromEnv() != 0; }

std::uint64_t chaos::injectionCount() {
  return Injections.load(std::memory_order_relaxed);
}

void chaos::point(Site S) {
  const std::uint64_t Seed = initFromEnv();
  if (CIP_LIKELY(Seed == 0))
    return;
  const std::uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (TLS.Gen != Gen) {
    if (TLS.Ordinal == ~std::uint64_t{0})
      TLS.Ordinal = NextOrdinal.fetch_add(1, std::memory_order_relaxed);
    TLS.Stream = ChaosStream(Seed, TLS.Ordinal);
    TLS.Gen = Gen;
  }
  const Action A = TLS.Stream.next(S);
  switch (A.Kind) {
  case ActionKind::None:
    return;
  case ActionKind::Relax:
    for (std::uint32_t I = 0; I < A.Amount; ++I)
      Backoff::cpuRelax();
    break;
  case ActionKind::Yield:
    std::this_thread::yield();
    break;
  case ActionKind::Sleep:
    std::this_thread::sleep_for(std::chrono::microseconds(A.Amount));
    break;
  }
  Injections.fetch_add(1, std::memory_order_relaxed);
}

#endif // CIP_CHAOS

//===- support/ThreadPool.h - Persistent fork/join worker pool -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, reusable pool of indexed lanes behind the fork/join
/// `runThreads` primitive. The paper's whole motivation is loops whose
/// inner invocations are *short*; spawning and joining OS threads per
/// parallel region puts tens of microseconds of constant cost inside every
/// timed region and dwarfs exactly the workloads DOMORE targets. The pool
/// spawns each lane once, parks it between regions (a bounded spin for the
/// next dispatch, then a condvar wait — no futex assumptions beyond what
/// std::condition_variable provides), and re-dispatches by bumping a
/// generation counter, so steady-state region launch costs one store and
/// at most one notify instead of N clone/join syscalls.
///
/// Lanes optionally pin themselves to cores round-robin when the
/// CIP_PIN_THREADS environment knob is set (Linux only) — the paper's
/// testbed pinned threads, and pinning keeps the scheduler/worker cache
/// affinity stable across invocations.
///
/// Nested regions (a pool lane itself calling run) fall back to plainly
/// spawned threads: the pool serializes top-level regions, and a lane
/// blocking on its own pool would deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_THREADPOOL_H
#define CIP_SUPPORT_THREADPOOL_H

#include "support/Backoff.h"
#include "support/Chaos.h"
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cip {

/// Persistent fork/join pool; see file comment. One process-wide instance
/// behind global() serves every parallel region in the runtimes.
class ThreadPool {
public:
  static ThreadPool &global() {
    static ThreadPool Pool;
    return Pool;
  }

  ThreadPool() : PinLanes(pinRequested()) {}

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stop.store(true, std::memory_order_release);
    }
    Cv.notify_all();
    for (auto &T : Lanes)
      T.join();
  }

  /// Runs \p Body(tid) for every tid in [0, N) on persistent lanes and
  /// blocks until all have returned. Top-level regions are serialized;
  /// calls from inside a pool lane (nested fork/join) transparently fall
  /// back to freshly spawned threads.
  template <typename Callable> void run(unsigned N, Callable &&Body) {
    assert(N > 0 && "need at least one thread");
    if (InPoolLane || Bypass.load(std::memory_order_relaxed)) {
      runSpawned(N, Body);
      return;
    }
    std::lock_guard<std::mutex> Region(RegionMu);
    ensureLanes(N);

    using Fn = std::remove_reference_t<Callable>;
    DispatchBody = [](void *Ctx, unsigned Tid) {
      (*static_cast<Fn *>(Ctx))(Tid);
    };
    DispatchCtx =
        const_cast<void *>(static_cast<const void *>(std::addressof(Body)));
    ActiveLanes = N;
    // Every lane checks in once per generation whether or not it runs the
    // body, so completion needs no per-region lane bookkeeping.
    Remaining.store(static_cast<unsigned>(Lanes.size()),
                    std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(Mu);
      Generation.fetch_add(1, std::memory_order_release);
    }
    Cv.notify_all();

    // Spin briefly for short regions, then park until the last check-in.
    Backoff B;
    for (unsigned I = 0; I < CallerSpinSteps; ++I) {
      if (Remaining.load(std::memory_order_acquire) == 0)
        return;
      B.pause();
    }
    std::unique_lock<std::mutex> L(Mu);
    DoneCv.wait(L, [this] {
      return Remaining.load(std::memory_order_acquire) == 0;
    });
  }

  /// Lanes currently spawned (monotone; the pool never shrinks).
  unsigned size() const { return static_cast<unsigned>(Lanes.size()); }

  /// When true, run() uses plain spawn-and-join threads instead of the
  /// persistent lanes. Initialized from the CIP_POOL environment knob
  /// (CIP_POOL=0 disables the pool); the fuzz driver toggles it between
  /// runs so one process can differentially test both thread substrates.
  /// Only flip while no region is running.
  static void setBypass(bool Disable) {
    Bypass.store(Disable, std::memory_order_relaxed);
  }
  static bool bypassed() { return Bypass.load(std::memory_order_relaxed); }

private:
  using BodyFn = void (*)(void *, unsigned);

  static bool pinRequested() {
    const char *S = std::getenv("CIP_PIN_THREADS");
    return S && *S && std::strcmp(S, "0") != 0;
  }

  static bool poolDisabledByEnv() {
    const char *S = std::getenv("CIP_POOL");
    return S && std::strcmp(S, "0") == 0;
  }

  /// Plain spawn-and-join fallback for nested regions.
  template <typename Callable>
  static void runSpawned(unsigned N, Callable &Body) {
    std::vector<std::thread> Threads;
    Threads.reserve(N);
    for (unsigned Tid = 0; Tid < N; ++Tid)
      Threads.emplace_back([&Body, Tid] { Body(Tid); });
    for (auto &T : Threads)
      T.join();
  }

  void ensureLanes(unsigned N) {
    while (Lanes.size() < N) {
      const unsigned Idx = static_cast<unsigned>(Lanes.size());
      // The lane must treat the *current* generation as already seen: it
      // was spawned before this region's dispatch, so the first bump it
      // observes is the one it participates in.
      const std::uint64_t SeenGen = Generation.load(std::memory_order_relaxed);
      Lanes.emplace_back([this, Idx, SeenGen] { laneMain(Idx, SeenGen); });
#if defined(__linux__)
      if (PinLanes) {
        const unsigned Cores = std::thread::hardware_concurrency();
        if (Cores > 0) {
          cpu_set_t Set;
          CPU_ZERO(&Set);
          CPU_SET(Idx % Cores, &Set);
          pthread_setaffinity_np(Lanes.back().native_handle(), sizeof(Set),
                                 &Set);
        }
      }
#endif
    }
  }

  void laneMain(unsigned Idx, std::uint64_t SeenGen) {
    InPoolLane = true;
    while (true) {
      // Spin for the next dispatch, then park on the condvar.
      Backoff B;
      bool Ready = false;
      for (unsigned I = 0; I < LaneSpinSteps; ++I) {
        if (Stop.load(std::memory_order_acquire) ||
            Generation.load(std::memory_order_acquire) != SeenGen) {
          Ready = true;
          break;
        }
        B.pause();
      }
      if (!Ready) {
        std::unique_lock<std::mutex> L(Mu);
        Cv.wait(L, [&] {
          return Stop.load(std::memory_order_relaxed) ||
                 Generation.load(std::memory_order_relaxed) != SeenGen;
        });
      }
      if (Stop.load(std::memory_order_acquire))
        return;
      SeenGen = Generation.load(std::memory_order_acquire);
      // Stretch the dispatch-observed -> body-entered window so lanes enter
      // the region in shuffled order and stale-generation bugs surface.
      CIP_CHAOS_POINT(PoolHandoff);
      if (Idx < ActiveLanes)
        DispatchBody(DispatchCtx, Idx);
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Pair with the caller's predicate re-check under Mu so the final
        // check-in can never be a lost wakeup.
        std::lock_guard<std::mutex> L(Mu);
        DoneCv.notify_all();
      }
    }
  }

  /// Set inside pool lanes so nested run() calls detect themselves.
  static inline thread_local bool InPoolLane = false;

  static constexpr unsigned CallerSpinSteps = 256;
  static constexpr unsigned LaneSpinSteps = 1024;

  std::mutex RegionMu; // serializes top-level regions
  std::mutex Mu;       // guards Generation bumps and Stop for the condvars
  std::condition_variable Cv;     // lanes park here between regions
  std::condition_variable DoneCv; // the caller parks here during one
  std::vector<std::thread> Lanes;
  std::atomic<std::uint64_t> Generation{0};
  std::atomic<unsigned> Remaining{0};
  std::atomic<bool> Stop{false};
  static inline std::atomic<bool> Bypass{poolDisabledByEnv()};
  BodyFn DispatchBody = nullptr;
  void *DispatchCtx = nullptr;
  unsigned ActiveLanes = 0;
  const bool PinLanes;
};

} // namespace cip

#endif // CIP_SUPPORT_THREADPOOL_H

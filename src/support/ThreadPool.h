//===- support/ThreadPool.h - Persistent fork/join worker pool -*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, reusable pool of indexed lanes behind the fork/join
/// `runThreads` primitive. The paper's whole motivation is loops whose
/// inner invocations are *short*; spawning and joining OS threads per
/// parallel region puts tens of microseconds of constant cost inside every
/// timed region and dwarfs exactly the workloads DOMORE targets. The pool
/// spawns each lane once, parks it between regions (a bounded spin for the
/// next dispatch, then a condvar wait — no futex assumptions beyond what
/// std::condition_variable provides), and re-dispatches by bumping a
/// generation counter, so steady-state region launch costs one store and
/// at most one notify instead of N clone/join syscalls.
///
/// Lanes optionally pin themselves to cores round-robin when the
/// CIP_PIN_THREADS environment knob is set (Linux only) — the paper's
/// testbed pinned threads, and pinning keeps the scheduler/worker cache
/// affinity stable across invocations.
///
/// Two escape hatches exist beside the serialized generation-dispatch path:
///
///  * **Lane leases** (\c acquireLanes / \c Lease): a dedicated subset of
///    parked lanes granted to one region so *multiple* regions can run
///    concurrently under one machine budget — the substrate the region
///    server (src/server) arbitrates. Leased lanes have their own per-lane
///    dispatch mailboxes, so disjoint leases never contend on the global
///    generation counter, and \c LeaseScope routes a thread's `runThreads`
///    calls onto its granted lanes without the engines knowing.
///
///  * **Budget-capped spawn fallback**: nested regions (a pool or lease
///    lane itself calling run) and bypass mode (CIP_POOL=0) fall back to
///    plainly spawned threads — a lane blocking on its own pool would
///    deadlock. Historically this fallback spawned unboundedly; it now
///    draws from an aggregate token budget (\c setSpawnCap, installed from
///    the strictly-parsed CIP_SERVER_WORKERS knob by the region server), so
///    concurrent nested regions cannot stampede the machine. A single
///    region wider than the whole budget still gets every thread it asks
///    for — its bodies may synchronize with each other (barriers, queues),
///    so running them in fewer-than-N chunks could deadlock; the cap bounds
///    the *aggregate* across regions, never one region's internal width.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_THREADPOOL_H
#define CIP_SUPPORT_THREADPOOL_H

#include "support/Backoff.h"
#include "support/Chaos.h"
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cip {

/// Persistent fork/join pool; see file comment. One process-wide instance
/// behind global() serves every parallel region in the runtimes.
class ThreadPool {
public:
  static ThreadPool &global() {
    static ThreadPool Pool;
    return Pool;
  }

  ThreadPool() : PinLanes(pinRequested()) {}

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stop.store(true, std::memory_order_release);
    }
    Cv.notify_all();
    for (auto &T : Lanes)
      T.join();
    stopLeaseLanes();
  }

  class Lease;

  /// Runs \p Body(tid) for every tid in [0, N) on persistent lanes and
  /// blocks until all have returned. Top-level regions are serialized;
  /// calls from inside a pool lane (nested fork/join) transparently fall
  /// back to budget-capped spawned threads. A thread holding a \c
  /// LeaseScope runs on its lease's dedicated lanes instead, concurrently
  /// with other leases.
  template <typename Callable> void run(unsigned N, Callable &&Body) {
    assert(N > 0 && "need at least one thread");
    if (InPoolLane || Bypass.load(std::memory_order_relaxed)) {
      runSpawned(N, Body);
      return;
    }
    if (Lease *L = ActiveLease) {
      // Server-granted region: dispatch on the lease's dedicated lanes.
      // A request wider than the grant (engines always size themselves to
      // the granted width, so this is a misuse guard, not a fast path)
      // overflows into the budgeted spawn fallback rather than deadlocking
      // on lanes the lease does not own.
      if (N <= L->size()) {
        L->run(N, Body);
        return;
      }
      runSpawned(N, Body);
      return;
    }
    std::lock_guard<std::mutex> Region(RegionMu);
    ensureLanes(N);

    using Fn = std::remove_reference_t<Callable>;
    DispatchBody = [](void *Ctx, unsigned Tid) {
      (*static_cast<Fn *>(Ctx))(Tid);
    };
    DispatchCtx =
        const_cast<void *>(static_cast<const void *>(std::addressof(Body)));
    ActiveLanes = N;
    // Every lane checks in once per generation whether or not it runs the
    // body, so completion needs no per-region lane bookkeeping.
    Remaining.store(static_cast<unsigned>(Lanes.size()),
                    std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(Mu);
      Generation.fetch_add(1, std::memory_order_release);
    }
    Cv.notify_all();

    // Spin briefly for short regions, then park until the last check-in.
    Backoff B;
    for (unsigned I = 0; I < CallerSpinSteps; ++I) {
      if (Remaining.load(std::memory_order_acquire) == 0)
        return;
      B.pause();
    }
    std::unique_lock<std::mutex> L(Mu);
    DoneCv.wait(L, [this] {
      return Remaining.load(std::memory_order_acquire) == 0;
    });
  }

  /// Lanes currently spawned (monotone; the pool never shrinks).
  unsigned size() const { return static_cast<unsigned>(Lanes.size()); }

  /// When true, run() uses plain spawn-and-join threads instead of the
  /// persistent lanes. Initialized from the CIP_POOL environment knob
  /// (CIP_POOL=0 disables the pool); the fuzz driver toggles it between
  /// runs so one process can differentially test both thread substrates.
  /// Only flip while no region is running.
  static void setBypass(bool Disable) {
    Bypass.store(Disable, std::memory_order_relaxed);
  }
  static bool bypassed() { return Bypass.load(std::memory_order_relaxed); }

  //===--------------------------------------------------------------------===//
  // Spawn-fallback budget
  //===--------------------------------------------------------------------===//

  /// Caps the aggregate number of concurrently-live spawn-fallback threads
  /// (nested regions and CIP_POOL=0 bypass). The region server installs the
  /// strictly-parsed CIP_SERVER_WORKERS value here so nested regions it did
  /// not grant cannot exceed the machine budget; the default is permissive
  /// (2x hardware concurrency, at least 8) so standalone engine runs behave
  /// as before. A single region wider than the cap still spawns every
  /// thread it needs (see file comment); \p Cap is clamped to >= 1.
  static void setSpawnCap(unsigned Cap) {
    SpawnState &S = spawnState();
    {
      std::lock_guard<std::mutex> L(S.Mu);
      S.Cap = Cap ? Cap : 1;
    }
    S.Cv.notify_all();
  }
  static unsigned spawnCap() {
    SpawnState &S = spawnState();
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Cap;
  }

  /// Spawn-fallback threads alive right now / the high-water mark since the
  /// last \c resetSpawnHighWater (regression tests assert the mark never
  /// exceeds the installed budget).
  static unsigned spawnedLive() {
    SpawnState &S = spawnState();
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Live;
  }
  static unsigned spawnHighWater() {
    SpawnState &S = spawnState();
    std::lock_guard<std::mutex> L(S.Mu);
    return S.HighWater;
  }
  static void resetSpawnHighWater() {
    SpawnState &S = spawnState();
    std::lock_guard<std::mutex> L(S.Mu);
    S.HighWater = S.Live;
  }

  //===--------------------------------------------------------------------===//
  // Lane leases
  //===--------------------------------------------------------------------===//

  /// A dedicated subset of parked lanes granted to one region. Holds its
  /// lanes until destroyed (or \c release()); \c run dispatches fork/join
  /// bodies onto them, repeatedly if the region has several phases.
  /// Disjoint leases dispatch and complete fully concurrently — unlike the
  /// global generation pool, which serializes top-level regions. Leased
  /// lanes count as pool lanes, so a nested run() from inside a leased body
  /// falls back to the budgeted spawn path exactly like the global pool.
  class Lease {
  public:
    Lease() = default;

    Lease(Lease &&O) noexcept : Pool(O.Pool), LaneIdx(std::move(O.LaneIdx)) {
      O.Pool = nullptr;
      O.LaneIdx.clear();
    }
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        release();
        Pool = O.Pool;
        LaneIdx = std::move(O.LaneIdx);
        O.Pool = nullptr;
        O.LaneIdx.clear();
      }
      return *this;
    }

    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    ~Lease() { release(); }

    bool valid() const { return Pool != nullptr; }
    unsigned size() const { return static_cast<unsigned>(LaneIdx.size()); }

    /// Returns every lane to the pool's free list. Idempotent. The caller
    /// must have joined its last run() (run blocks until completion, so
    /// this holds by construction for well-formed use).
    void release() {
      if (!Pool)
        return;
      Pool->releaseLanes(LaneIdx);
      LaneIdx.clear();
      Pool = nullptr;
    }

    /// Runs \p Body(tid) for tid in [0, N) on this lease's lanes and blocks
    /// until all have returned. \p N must not exceed size().
    template <typename Callable> void run(unsigned N, Callable &&Body) {
      assert(Pool && "run on a released lease");
      assert(N > 0 && "need at least one thread");
      assert(N <= LaneIdx.size() && "region wider than the lease");

      using Fn = std::remove_reference_t<Callable>;
      BodyFn Dispatch = [](void *Ctx, unsigned Tid) {
        (*static_cast<Fn *>(Ctx))(Tid);
      };
      void *Ctx =
          const_cast<void *>(static_cast<const void *>(std::addressof(Body)));

      Completion Done;
      Done.Remaining.store(N, std::memory_order_relaxed);
      for (unsigned I = 0; I < N; ++I)
        Pool->dispatchLeaseLane(LaneIdx[I], Dispatch, Ctx, I, &Done);

      // Spin briefly for short regions, then park until the last check-in.
      Backoff B;
      for (unsigned I = 0; I < CallerSpinSteps; ++I) {
        if (Done.Remaining.load(std::memory_order_acquire) == 0) {
          // The final check-in decrements with Done.Mu held, so draining
          // the mutex here keeps this stack-allocated latch alive until
          // the notifier is fully out of it.
          std::lock_guard<std::mutex> L(Done.Mu);
          return;
        }
        B.pause();
      }
      std::unique_lock<std::mutex> L(Done.Mu);
      Done.Cv.wait(L, [&Done] {
        return Done.Remaining.load(std::memory_order_acquire) == 0;
      });
    }

  private:
    friend class ThreadPool;

    ThreadPool *Pool = nullptr;
    std::vector<unsigned> LaneIdx; // indices into LeaseLanes
  };

  /// Acquires \p K dedicated lanes (reusing parked ones, spawning the
  /// rest). Never blocks: budget arbitration — who may hold how many lanes
  /// at once — is the region server's job, not the pool's; the pool only
  /// keeps the grant exclusive. \p K == 0 yields an invalid lease.
  Lease acquireLanes(unsigned K) {
    Lease L;
    if (K == 0)
      return L;
    L.Pool = this;
    L.LaneIdx.reserve(K);
    std::lock_guard<std::mutex> G(LeaseMu);
    while (!FreeLeaseLanes.empty() && L.LaneIdx.size() < K) {
      L.LaneIdx.push_back(FreeLeaseLanes.back());
      FreeLeaseLanes.pop_back();
    }
    while (L.LaneIdx.size() < K) {
      const unsigned Idx = static_cast<unsigned>(LeaseLanes.size());
      LeaseLanes.push_back(std::make_unique<LeaseLane>());
      LeaseLane &Lane = *LeaseLanes.back();
      Lane.T = std::thread([&Lane] { leaseLaneMain(Lane); });
      L.LaneIdx.push_back(Idx);
    }
    return L;
  }

  /// Installs \p L as the calling thread's dispatch target: for the scope's
  /// lifetime, run()/runThreads on this thread executes on the lease's
  /// dedicated lanes instead of the serialized global pool. The region
  /// server wraps each granted region execution in one of these, so the
  /// engines' fork/join calls land on their grant without modification.
  class LeaseScope {
  public:
    explicit LeaseScope(Lease &L) : Prev(ActiveLease) { ActiveLease = &L; }
    ~LeaseScope() { ActiveLease = Prev; }

    LeaseScope(const LeaseScope &) = delete;
    LeaseScope &operator=(const LeaseScope &) = delete;

  private:
    Lease *Prev;
  };

  /// Lease lanes currently alive (parked or granted; monotone).
  unsigned leaseLaneCount() const {
    std::lock_guard<std::mutex> G(LeaseMu);
    return static_cast<unsigned>(LeaseLanes.size());
  }

private:
  using BodyFn = void (*)(void *, unsigned);

  static bool pinRequested() {
    const char *S = std::getenv("CIP_PIN_THREADS");
    return S && *S && std::strcmp(S, "0") != 0;
  }

  static bool poolDisabledByEnv() {
    const char *S = std::getenv("CIP_POOL");
    return S && std::strcmp(S, "0") == 0;
  }

  //===--------------------------------------------------------------------===//
  // Spawn fallback (nested regions, bypass mode)
  //===--------------------------------------------------------------------===//

  struct SpawnState {
    std::mutex Mu;
    std::condition_variable Cv;
    unsigned Cap = defaultSpawnCap();
    unsigned Live = 0;
    unsigned HighWater = 0;
  };

  static unsigned defaultSpawnCap() {
    const unsigned HW = std::thread::hardware_concurrency();
    return HW > 4 ? 2 * HW : 8;
  }

  static SpawnState &spawnState() {
    static SpawnState S;
    return S;
  }

  /// Blocks until \p N spawn tokens are available, then takes them. A
  /// request wider than the whole budget takes every token and
  /// oversubscribes (a region's bodies may synchronize with each other, so
  /// its width is indivisible; the cap bounds the aggregate across
  /// regions). Threads that are themselves fallback workers skip the
  /// budget: their region already holds tokens, and waiting for tokens the
  /// parent region cannot release before they finish would self-deadlock.
  static unsigned acquireSpawnTokens(unsigned N) {
    if (InFallbackThread)
      return 0;
    SpawnState &S = spawnState();
    std::unique_lock<std::mutex> L(S.Mu);
    const unsigned Want = N < S.Cap ? N : S.Cap;
    S.Cv.wait(L, [&S, Want] { return S.Live + Want <= S.Cap; });
    S.Live += Want;
    if (S.Live > S.HighWater)
      S.HighWater = S.Live;
    return Want;
  }

  static void releaseSpawnTokens(unsigned Taken) {
    if (Taken == 0)
      return;
    SpawnState &S = spawnState();
    {
      std::lock_guard<std::mutex> L(S.Mu);
      S.Live -= Taken;
    }
    S.Cv.notify_all();
  }

  /// Plain spawn-and-join fallback for nested regions and bypass mode,
  /// throttled by the aggregate token budget (see acquireSpawnTokens).
  template <typename Callable>
  static void runSpawned(unsigned N, Callable &Body) {
    const unsigned Taken = acquireSpawnTokens(N);
    std::vector<std::thread> Threads;
    Threads.reserve(N);
    for (unsigned Tid = 0; Tid < N; ++Tid)
      Threads.emplace_back([&Body, Tid] {
        // Fallback workers are nested-region workers: a run() from inside
        // one must take the spawn path again (the generation pool would
        // deadlock behind its own ancestor), and skips the token budget
        // (see acquireSpawnTokens).
        InPoolLane = true;
        InFallbackThread = true;
        Body(Tid);
      });
    for (auto &T : Threads)
      T.join();
    releaseSpawnTokens(Taken);
  }

  void ensureLanes(unsigned N) {
    while (Lanes.size() < N) {
      const unsigned Idx = static_cast<unsigned>(Lanes.size());
      // The lane must treat the *current* generation as already seen: it
      // was spawned before this region's dispatch, so the first bump it
      // observes is the one it participates in.
      const std::uint64_t SeenGen = Generation.load(std::memory_order_relaxed);
      Lanes.emplace_back([this, Idx, SeenGen] { laneMain(Idx, SeenGen); });
#if defined(__linux__)
      if (PinLanes) {
        const unsigned Cores = std::thread::hardware_concurrency();
        if (Cores > 0) {
          cpu_set_t Set;
          CPU_ZERO(&Set);
          CPU_SET(Idx % Cores, &Set);
          pthread_setaffinity_np(Lanes.back().native_handle(), sizeof(Set),
                                 &Set);
        }
      }
#endif
    }
  }

  void laneMain(unsigned Idx, std::uint64_t SeenGen) {
    InPoolLane = true;
    while (true) {
      // Spin for the next dispatch, then park on the condvar.
      Backoff B;
      bool Ready = false;
      for (unsigned I = 0; I < LaneSpinSteps; ++I) {
        if (Stop.load(std::memory_order_acquire) ||
            Generation.load(std::memory_order_acquire) != SeenGen) {
          Ready = true;
          break;
        }
        B.pause();
      }
      if (!Ready) {
        std::unique_lock<std::mutex> L(Mu);
        Cv.wait(L, [&] {
          return Stop.load(std::memory_order_relaxed) ||
                 Generation.load(std::memory_order_relaxed) != SeenGen;
        });
      }
      if (Stop.load(std::memory_order_acquire))
        return;
      SeenGen = Generation.load(std::memory_order_acquire);
      // Stretch the dispatch-observed -> body-entered window so lanes enter
      // the region in shuffled order and stale-generation bugs surface.
      CIP_CHAOS_POINT(PoolHandoff);
      if (Idx < ActiveLanes)
        DispatchBody(DispatchCtx, Idx);
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Pair with the caller's predicate re-check under Mu so the final
        // check-in can never be a lost wakeup.
        std::lock_guard<std::mutex> L(Mu);
        DoneCv.notify_all();
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Lease lanes: per-lane dispatch mailboxes
  //===--------------------------------------------------------------------===//

  /// One region's completion latch, stack-allocated in Lease::run so
  /// concurrent leases never share completion state.
  struct Completion {
    std::atomic<unsigned> Remaining{0};
    std::mutex Mu;
    std::condition_variable Cv;
  };

  /// A parked lane with its own dispatch mailbox. Unlike the generation
  /// pool — one broadcast channel, all lanes, one region at a time — each
  /// lease lane is dispatched point-to-point, so disjoint lane subsets run
  /// different regions concurrently. Dispatch fields are guarded by Mu;
  /// Gen bumps announce a new dispatch (same lost-wakeup discipline as the
  /// generation pool's condvar).
  struct LeaseLane {
    std::thread T;
    std::mutex Mu;
    std::condition_variable Cv;
    std::uint64_t Gen = 0;
    bool Stop = false;
    BodyFn Body = nullptr;
    void *Ctx = nullptr;
    unsigned Tid = 0;
    Completion *Done = nullptr;
  };

  void dispatchLeaseLane(unsigned Idx, BodyFn Body, void *Ctx, unsigned Tid,
                         Completion *Done) {
    // LeaseLane objects are address-stable behind unique_ptr, but the
    // vector's buffer is not: a concurrent acquireLanes growing it
    // reallocates under LeaseMu, so resolving the pointer needs the lock.
    LeaseLane *LanePtr;
    {
      std::lock_guard<std::mutex> G(LeaseMu);
      LanePtr = LeaseLanes[Idx].get();
    }
    LeaseLane &L = *LanePtr;
    {
      std::lock_guard<std::mutex> G(L.Mu);
      L.Body = Body;
      L.Ctx = Ctx;
      L.Tid = Tid;
      L.Done = Done;
      ++L.Gen;
    }
    L.Cv.notify_one();
  }

  static void leaseLaneMain(LeaseLane &L) {
    InPoolLane = true;
    std::uint64_t SeenGen = 0;
    while (true) {
      BodyFn Body;
      void *Ctx;
      unsigned Tid;
      Completion *Done;
      {
        // Spin briefly for the next dispatch, then park. Lease lanes serve
        // server traffic with queueing upstream, so the spin window is the
        // short one (caller-sized, not the hot generation-lane one).
        Backoff B;
        bool Ready = false;
        for (unsigned I = 0; I < CallerSpinSteps; ++I) {
          std::lock_guard<std::mutex> G(L.Mu);
          if (L.Stop || L.Gen != SeenGen) {
            Ready = true;
            break;
          }
          B.pause();
        }
        std::unique_lock<std::mutex> G(L.Mu);
        if (!Ready)
          L.Cv.wait(G, [&L, SeenGen] { return L.Stop || L.Gen != SeenGen; });
        if (L.Stop)
          return;
        SeenGen = L.Gen;
        Body = L.Body;
        Ctx = L.Ctx;
        Tid = L.Tid;
        Done = L.Done;
      }
      CIP_CHAOS_POINT(PoolHandoff);
      Body(Ctx, Tid);
      // The Completion lives on the lease caller's stack, and the caller
      // may return (and destroy it) the instant Remaining reads zero. The
      // decrement therefore happens with Mu held: once zero is visible,
      // this thread already owns Mu, and both caller exits — the condvar
      // wait and the spin fast path — reacquire Mu before returning, so
      // the latch outlives the notify.
      {
        std::lock_guard<std::mutex> G(Done->Mu);
        if (Done->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
          Done->Cv.notify_all();
      }
    }
  }

  void releaseLanes(const std::vector<unsigned> &Idx) {
    std::lock_guard<std::mutex> G(LeaseMu);
    for (unsigned I : Idx)
      FreeLeaseLanes.push_back(I);
  }

  void stopLeaseLanes() {
    std::vector<std::unique_ptr<LeaseLane>> ToJoin;
    {
      std::lock_guard<std::mutex> G(LeaseMu);
      ToJoin.swap(LeaseLanes);
      FreeLeaseLanes.clear();
    }
    for (auto &L : ToJoin) {
      {
        std::lock_guard<std::mutex> LaneG(L->Mu);
        L->Stop = true;
      }
      L->Cv.notify_all();
      L->T.join();
    }
  }

  /// Set inside pool lanes (generation, lease, and spawn-fallback workers)
  /// so nested run() calls detect themselves.
  static inline thread_local bool InPoolLane = false;
  /// Set inside spawn-fallback workers: doubly-nested regions skip the
  /// token budget (their parent holds tokens; waiting would self-deadlock).
  static inline thread_local bool InFallbackThread = false;
  /// The lease run()/runThreads on this thread dispatches to, when inside a
  /// LeaseScope.
  static inline thread_local Lease *ActiveLease = nullptr;

  static constexpr unsigned CallerSpinSteps = 256;
  static constexpr unsigned LaneSpinSteps = 1024;

  std::mutex RegionMu; // serializes top-level regions
  std::mutex Mu;       // guards Generation bumps and Stop for the condvars
  std::condition_variable Cv;     // lanes park here between regions
  std::condition_variable DoneCv; // the caller parks here during one
  std::vector<std::thread> Lanes;
  std::atomic<std::uint64_t> Generation{0};
  std::atomic<unsigned> Remaining{0};
  std::atomic<bool> Stop{false};
  static inline std::atomic<bool> Bypass{poolDisabledByEnv()};
  BodyFn DispatchBody = nullptr;
  void *DispatchCtx = nullptr;
  unsigned ActiveLanes = 0;
  const bool PinLanes;

  mutable std::mutex LeaseMu; // guards LeaseLanes growth and the free list
  std::vector<std::unique_ptr<LeaseLane>> LeaseLanes;
  std::vector<unsigned> FreeLeaseLanes;
};

} // namespace cip

#endif // CIP_SUPPORT_THREADPOOL_H

//===- support/Barrier.h - Barrier synchronization primitives --*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-speculative barriers that DOMORE and SPECCROSS are measured
/// against. \c PthreadBarrier is the dissertation's baseline (parallelized
/// code with `pthread_barrier_wait` between inner-loop invocations);
/// \c SpinBarrier is a classic centralized sense-reversing barrier; and
/// \c InstrumentedBarrier wraps either to account, per thread, how long the
/// thread idles at barriers — the quantity plotted in Fig 4.3 ("overhead of
/// barrier synchronizations").
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_BARRIER_H
#define CIP_SUPPORT_BARRIER_H

#include "support/Backoff.h"
#include "support/Chaos.h"
#include "support/Compiler.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <pthread.h>
#include <vector>

namespace cip {

/// Thin RAII wrapper over POSIX pthread_barrier_t.
class PthreadBarrier {
public:
  explicit PthreadBarrier(unsigned NumThreads);
  ~PthreadBarrier();

  PthreadBarrier(const PthreadBarrier &) = delete;
  PthreadBarrier &operator=(const PthreadBarrier &) = delete;

  /// Blocks until \c NumThreads threads have called wait().
  void wait();

private:
  pthread_barrier_t Native;
};

/// Centralized sense-reversing spin barrier. Lower latency than the pthread
/// barrier at small thread counts; used where the harness wants barrier cost
/// itself (rather than futex wakeup latency) to dominate.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned NumThreads)
      : Threshold(NumThreads), Count(NumThreads) {}

  SpinBarrier(const SpinBarrier &) = delete;
  SpinBarrier &operator=(const SpinBarrier &) = delete;

  void wait() {
    // Spread arrivals out so generation-reuse windows (a fast thread
    // re-arriving before a slow one left the previous generation) occur.
    CIP_CHAOS_POINT(BarrierArrive);
    const bool MySense = !Sense.load(std::memory_order_relaxed);
    if (Count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver resets the count and flips the sense, releasing all.
      Count.store(Threshold, std::memory_order_relaxed);
      Sense.store(MySense, std::memory_order_release);
      return;
    }
    Backoff B;
    while (Sense.load(std::memory_order_acquire) != MySense)
      B.pause();
  }

private:
  const unsigned Threshold;
  alignas(CacheLineBytes) std::atomic<unsigned> Count;
  alignas(CacheLineBytes) std::atomic<bool> Sense{false};
};

/// Wraps a barrier and records, per thread, the nanoseconds spent waiting at
/// it. The dissertation defines barrier overhead as "the total amount of
/// time threads sit idle waiting for the slowest thread to reach the
/// barrier" (Fig 4.3); this class measures exactly that.
template <typename BarrierT> class InstrumentedBarrier {
public:
  explicit InstrumentedBarrier(unsigned NumThreads)
      : Inner(NumThreads), IdleNanos(NumThreads) {
    for (auto &Slot : IdleNanos)
      Slot.Value = 0;
  }

  /// Waits at the barrier on behalf of thread \p Tid, accumulating idle time.
  void wait(unsigned Tid) {
    assert(Tid < IdleNanos.size() && "thread id out of range");
    const std::uint64_t Begin = nowNanos();
    Inner.wait();
    IdleNanos[Tid].Value += nowNanos() - Begin;
  }

  /// Total nanoseconds all threads spent idling at this barrier.
  std::uint64_t totalIdleNanos() const {
    std::uint64_t Sum = 0;
    for (const auto &Slot : IdleNanos)
      Sum += Slot.Value;
    return Sum;
  }

  std::uint64_t idleNanos(unsigned Tid) const { return IdleNanos[Tid].Value; }

  void resetIdle() {
    for (auto &Slot : IdleNanos)
      Slot.Value = 0;
  }

private:
  struct alignas(CacheLineBytes) PaddedCounter {
    std::uint64_t Value;
  };

  BarrierT Inner;
  std::vector<PaddedCounter> IdleNanos;
};

} // namespace cip

#endif // CIP_SUPPORT_BARRIER_H

//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generators used by the synthetic
/// workload generators and the property-based tests. Every experiment in
/// EXPERIMENTS.md must be bit-reproducible, so all randomness in the project
/// flows through these generators with explicit seeds; std::rand and
/// nondeterministically-seeded engines are banned.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_RNG_H
#define CIP_SUPPORT_RNG_H

#include <cstdint>

namespace cip {

/// SplitMix64: a tiny, fast, statistically solid 64-bit generator. Used both
/// directly and to seed Xoshiro256StarStar.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  std::uint64_t State;
};

/// Xoshiro256**: the project-wide workhorse generator.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions when convenient, though most callers use the
/// bounded helpers below to stay allocation- and libstdc++-variance-free.
class Xoshiro256StarStar {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must be
  /// nonzero. Uses Lemire's multiply-shift reduction (slightly biased for
  /// huge bounds, which is irrelevant for workload generation).
  std::uint64_t nextBelow(std::uint64_t Bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t State[4];
};

} // namespace cip

#endif // CIP_SUPPORT_RNG_H

//===- support/Barrier.cpp - Barrier synchronization primitives ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"

using namespace cip;

PthreadBarrier::PthreadBarrier(unsigned NumThreads) {
  assert(NumThreads > 0 && "barrier needs at least one participant");
  [[maybe_unused]] int Rc =
      pthread_barrier_init(&Native, /*attr=*/nullptr, NumThreads);
  assert(Rc == 0 && "pthread_barrier_init failed");
}

PthreadBarrier::~PthreadBarrier() { pthread_barrier_destroy(&Native); }

void PthreadBarrier::wait() {
  CIP_CHAOS_POINT(BarrierArrive);
  [[maybe_unused]] int Rc = pthread_barrier_wait(&Native);
  assert((Rc == 0 || Rc == PTHREAD_BARRIER_SERIAL_THREAD) &&
         "pthread_barrier_wait failed");
}

//===- support/Backoff.h - Spin-wait backoff -------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait policy shared by every busy-wait in the runtimes: DOMORE queue
/// produce/consume spins, `waitForIteration` on the latestFinished slots,
/// and the SPECCROSS throttle/checker waits. The paper's testbed had 24
/// real cores, so pure pause-spinning was fine; this reproduction routinely
/// oversubscribes a small machine (the thread sweeps go to 24), where a
/// pure spinner starves the thread it is waiting *for*.
///
/// The policy is tiered: a short run of single `pause` instructions (waits
/// that resolve in tens of nanoseconds never leave the core), then bursts
/// of pauses (longer waits back off the shared line without paying a
/// syscall), then `yield` every step (the wait is long enough that the
/// sibling deserves the time slice).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_BACKOFF_H
#define CIP_SUPPORT_BACKOFF_H

#include <thread>

namespace cip {

/// Per-wait-site tiered backoff: spin, then pause bursts, then yields.
class Backoff {
public:
  /// One architectural pause; keeps hyperthread siblings honest without
  /// giving up the time slice.
  static void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  /// One backoff step; escalates with consecutive calls since reset().
  void pause() {
    ++Spins;
    if (Spins <= SpinSteps) {
      cpuRelax();
      return;
    }
    if (Spins <= SpinSteps + BurstSteps) {
      for (unsigned I = 0; I < PauseBurst; ++I)
        cpuRelax();
      return;
    }
    std::this_thread::yield();
  }

  void reset() { Spins = 0; }

private:
  /// Tier bounds. Tier 1 covers cache-miss-scale waits, tier 2 the tail of
  /// short dependence waits, tier 3 everything longer. The first yield
  /// lands after ~32 pauses: on an oversubscribed machine the thread being
  /// waited for is often descheduled, and burning a whole quantum spinning
  /// at it doubles DOMORE times at 2x oversubscription (measured).
  static constexpr unsigned SpinSteps = 16;
  static constexpr unsigned BurstSteps = 4;
  static constexpr unsigned PauseBurst = 4;

  unsigned Spins = 0;
};

} // namespace cip

#endif // CIP_SUPPORT_BACKOFF_H

//===- support/Backoff.h - Spin-wait backoff -------------------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin-wait policy shared by every busy-wait in the runtimes. The paper's
/// testbed had 24 real cores, so pure pause-spinning was fine; this
/// reproduction routinely oversubscribes a small machine (the thread sweeps
/// go to 24), where a pure spinner starves the thread it is waiting *for*.
/// The policy pauses briefly, then yields the time slice.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_BACKOFF_H
#define CIP_SUPPORT_BACKOFF_H

#include <thread>

namespace cip {

/// Per-wait-site exponentialish backoff: cheap pauses first, then yields.
class Backoff {
public:
  void pause() {
    if ((++Spins & 31) == 0) {
      std::this_thread::yield();
      return;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  void reset() { Spins = 0; }

private:
  unsigned Spins = 0;
};

} // namespace cip

#endif // CIP_SUPPORT_BACKOFF_H

//===- support/ThreadGroup.h - Fork/join thread helpers --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork/join helper that runs N indexed bodies and joins them before
/// returning. All parallel executors in `src/harness`, the DOMORE runtime
/// engine, and the SPECCROSS runtime use this instead of raw std::thread so
/// that thread ids are dense [0, N) integers, matching the `tid` indices
/// that the paper's shadow memory, status arrays, and signature logs are
/// keyed by — and so every region shares the persistent `ThreadPool`
/// instead of paying thread create/join inside the measured interval.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_THREADGROUP_H
#define CIP_SUPPORT_THREADGROUP_H

#include "support/Compiler.h"
#include "support/ThreadPool.h"

#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace cip {

/// Runs \p Body(tid) on \p NumThreads pool lanes and joins them all before
/// returning. Lane 0 is a pool lane too (the caller only coordinates),
/// which keeps per-thread state symmetric. Backed by the process-wide
/// persistent \c ThreadPool so thread create/join stays out of timed
/// regions; nested calls fall back to freshly spawned threads.
template <typename Callable>
void runThreads(unsigned NumThreads, Callable &&Body) {
  assert(NumThreads > 0 && "need at least one thread");
  ThreadPool::global().run(NumThreads, std::forward<Callable>(Body));
}

/// A joinable group of indexed threads for cases where spawn and join must
/// be separated (e.g., the SPECCROSS checker thread outlives the workers of
/// a single speculative region attempt).
class ThreadGroup {
public:
  ThreadGroup() = default;
  ~ThreadGroup() { joinAll(); }

  ThreadGroup(const ThreadGroup &) = delete;
  ThreadGroup &operator=(const ThreadGroup &) = delete;

  /// Spawns one thread running \p Body(tid) where tid is the spawn index.
  template <typename Callable> void spawn(Callable &&Body) {
    const unsigned Tid = static_cast<unsigned>(Threads.size());
    Threads.emplace_back(
        [Fn = std::forward<Callable>(Body), Tid]() mutable { Fn(Tid); });
  }

  /// Joins every spawned thread. Idempotent.
  void joinAll() {
    for (auto &T : Threads)
      if (T.joinable())
        T.join();
    Threads.clear();
  }

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

private:
  std::vector<std::thread> Threads;
};

} // namespace cip

#endif // CIP_SUPPORT_THREADGROUP_H

//===- support/ThreadGroup.h - Fork/join thread helpers --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork/join helper that spawns N indexed threads and joins them on scope
/// exit. All parallel executors in `src/harness`, the DOMORE runtime engine,
/// and the SPECCROSS runtime use this instead of raw std::thread so that
/// thread ids are dense [0, N) integers, matching the `tid` indices that the
/// paper's shadow memory, status arrays, and signature logs are keyed by.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_THREADGROUP_H
#define CIP_SUPPORT_THREADGROUP_H

#include "support/Compiler.h"

#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace cip {

/// Runs \p Body(tid) on \p NumThreads freshly spawned threads and joins them
/// all before returning. Thread 0 is a spawned thread too (the caller only
/// coordinates), which keeps per-thread state symmetric.
template <typename Callable>
void runThreads(unsigned NumThreads, Callable &&Body) {
  assert(NumThreads > 0 && "need at least one thread");
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned Tid = 0; Tid < NumThreads; ++Tid)
    Threads.emplace_back([&Body, Tid] { Body(Tid); });
  for (auto &T : Threads)
    T.join();
}

/// A joinable group of indexed threads for cases where spawn and join must
/// be separated (e.g., the SPECCROSS checker thread outlives the workers of
/// a single speculative region attempt).
class ThreadGroup {
public:
  ThreadGroup() = default;
  ~ThreadGroup() { joinAll(); }

  ThreadGroup(const ThreadGroup &) = delete;
  ThreadGroup &operator=(const ThreadGroup &) = delete;

  /// Spawns one thread running \p Body(tid) where tid is the spawn index.
  template <typename Callable> void spawn(Callable &&Body) {
    const unsigned Tid = static_cast<unsigned>(Threads.size());
    Threads.emplace_back(
        [Fn = std::forward<Callable>(Body), Tid]() mutable { Fn(Tid); });
  }

  /// Joins every spawned thread. Idempotent.
  void joinAll() {
    for (auto &T : Threads)
      if (T.joinable())
        T.join();
    Threads.clear();
  }

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

private:
  std::vector<std::thread> Threads;
};

} // namespace cip

#endif // CIP_SUPPORT_THREADGROUP_H

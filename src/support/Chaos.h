//===- support/Chaos.h - Schedule-chaos injection hooks --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded schedule-perturbation hooks for adversarial-interleaving testing.
/// Every protocol edge of the runtimes — queue produce/consume, progress
/// publication, sync waits, pool handoff, barrier arrival, clock
/// publication, signature logging, checkpoint/restore — carries a
/// \c CIP_CHAOS_POINT(site) probe. In a chaos-enabled build
/// (-DCIP_CHAOS_HOOKS=ON) with the \c CIP_CHAOS=<seed> environment knob set
/// (or chaos::configure(seed) called), each probe consults a deterministic
/// per-thread decision stream and occasionally stretches the window between
/// two protocol actions: a run of architectural pauses, a scheduler yield,
/// or a short sleep. That forces the interleavings an idle CI machine never
/// produces on its own — exactly where violations of the protocol
/// invariants (monotone latestFinished, sync conditions never targeting a
/// buffered iteration, epoch-ordered commits) hide.
///
/// Zero-cost-when-disabled guarantee: the default build compiles every
/// probe to nothing. \c CIP_CHAOS defaults to 0, making \c CIP_CHAOS_POINT
/// an empty statement, so instrumented translation units reference no
/// symbol of this header's runtime machinery (CI checks with `nm -u`,
/// mirroring the CIP_TELEMETRY=0 check).
///
/// Determinism contract: the decision stream is a pure function of
/// (seed, thread ordinal, call index) — see \c ChaosStream, which is
/// compiled unconditionally so the determinism tests run in every build.
/// Thread ordinals are assigned on first probe per thread, so cross-thread
/// interleaving of injections still varies run to run (that is the point);
/// what a seed pins down is each thread's own injection sequence, which is
/// what a failing-seed repro needs.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SUPPORT_CHAOS_H
#define CIP_SUPPORT_CHAOS_H

// Self-default: headers that test CIP_CHAOS must see a value regardless of
// include order (same rule as CIP_TELEMETRY; see DESIGN.md).
#ifndef CIP_CHAOS
#define CIP_CHAOS 0
#endif

#include "support/Compiler.h"
#include "support/Rng.h"

#include <cstdint>

namespace cip {
namespace chaos {

/// True when the library was built with chaos hooks compiled in
/// (-DCIP_CHAOS_HOOKS=ON).
bool compiledIn();

/// Protocol edges that carry injection probes. The site feeds the decision
/// stream, so perturbation at one edge does not shift the decisions taken
/// at another — a failing seed keeps failing when probes are added.
enum class Site : std::uint32_t {
  QueueProduce,    ///< SPSCQueue: before the producer's release store
  QueueConsume,    ///< SPSCQueue: after the consumer's acquire load
  ProgressPublish, ///< DOMORE: before a latestFinished release store
  ProgressWait,    ///< DOMORE: inside a waitForIteration spin
  Dispatch,        ///< DOMORE scheduler: before flushing a WorkRange
  BarrierArrive,   ///< Barrier: immediately before the wait
  PoolHandoff,     ///< ThreadPool: lane observed a generation bump
  ClockPublish,    ///< SPECCROSS: before a worker clock release store
  SignatureLog,    ///< SPECCROSS: between signature write and request send
  CheckerPoll,     ///< SPECCROSS checker: one polling round completed
  ThrottleSpin,    ///< SPECCROSS: inside the speculative-range throttle
  Snapshot,        ///< Checkpoint: before copying state aside
  Restore,         ///< Checkpoint: before copying the snapshot back
  FaultRecord,     ///< PageDirty substrate: fault claimed, before the dirty
                   ///< bit is recorded and the page re-enabled
  SnapshotCommit,  ///< Checkpoint: substrate copy done, before the façade
                   ///< marks the snapshot valid
  PolicyDecide,    ///< adaptive harness: before consulting the policy engine
  PolicySwitch,    ///< adaptive harness: before tearing down for a switch
  ServerAdmit,     ///< RegionServer: after a grant, before execution starts
  ServerRelease,   ///< RegionServer: before returning a grant to the budget
  ShardMerge,      ///< DOMORE sharded scheduler: probe stage done, before the
                   ///< deterministic per-iteration merge dispatches
  TeamProbe,       ///< DOMORE scheduler team: member observed a block
                   ///< hand-off, before probing its shard group
  CheckCommit,     ///< SPECCROSS checker lanes: lane scans done, before the
                   ///< epoch-ordered serial result commit
  NumSites
};

const char *siteName(Site S);

/// What one probe visit does.
enum class ActionKind : std::uint32_t {
  None,  ///< fall through (the common case)
  Relax, ///< Amount architectural pauses
  Yield, ///< give up the time slice
  Sleep  ///< sleep Amount microseconds (rare; models a descheduled thread)
};

struct Action {
  ActionKind Kind = ActionKind::None;
  std::uint32_t Amount = 0;
};

/// The deterministic decision stream behind every probe: a pure function of
/// (seed, thread ordinal) advanced once per probe visit. Compiled in every
/// build so the seed-determinism tests cover the exact logic the hooks use.
class ChaosStream {
public:
  ChaosStream(std::uint64_t Seed, std::uint64_t Ordinal)
      : Rng(mixSeed(Seed, Ordinal)) {}

  /// The decision for the next probe visit at \p S. Roughly: 70% nothing,
  /// 22% a pause run, 6% a yield, 2% a short sleep — enough perturbation to
  /// shuffle interleavings without turning a millisecond workload into a
  /// minutes-long run.
  Action next(Site S) {
    // Fold the site in so adding a probe at one edge never shifts the
    // decisions other edges see for the same seed.
    const std::uint64_t Draw = Rng.next() ^ siteSalt(S);
    const std::uint32_t Bucket = static_cast<std::uint32_t>(Draw % 100);
    if (Bucket < 70)
      return {ActionKind::None, 0};
    if (Bucket < 92)
      return {ActionKind::Relax,
              static_cast<std::uint32_t>(1 + ((Draw >> 7) & 0x3f))};
    if (Bucket < 98)
      return {ActionKind::Yield, 0};
    return {ActionKind::Sleep,
            static_cast<std::uint32_t>(1 + ((Draw >> 7) & 0x1f))};
  }

private:
  static std::uint64_t mixSeed(std::uint64_t Seed, std::uint64_t Ordinal) {
    // SplitMix the pair so ordinals 0..N of nearby seeds do not correlate.
    SplitMix64 SM(Seed ^ (0x9e3779b97f4a7c15ULL * (Ordinal + 1)));
    return SM.next();
  }

  static std::uint64_t siteSalt(Site S) {
    SplitMix64 SM(static_cast<std::uint64_t>(S) + 1);
    return SM.next();
  }

  Xoshiro256StarStar Rng;
};

#if CIP_CHAOS

/// Re-seeds every probe in the process: 0 disables injection, any other
/// value starts a new deterministic injection schedule. Threads re-derive
/// their stream on the next probe they hit. Call only while no parallel
/// region is running (the fuzz driver calls it between engine runs). The
/// CIP_CHAOS environment knob provides the initial configuration.
void configure(std::uint64_t Seed);

/// Seed currently configured (0 = injection disabled).
std::uint64_t currentSeed();

/// True when a nonzero seed is configured.
bool enabled();

/// Probe visits that actually injected (Relax/Yield/Sleep), process-wide,
/// since the last configure(). Relaxed counter; for tests and fuzz logs.
std::uint64_t injectionCount();

/// The probe body. Cheap when disabled (one relaxed load and a branch), but
/// chaos builds are correctness builds — perf is measured on default builds
/// where this function does not even exist in the object code.
void point(Site S);

#else // !CIP_CHAOS

inline void configure(std::uint64_t) {}
inline std::uint64_t currentSeed() { return 0; }
inline bool enabled() { return false; }
inline std::uint64_t injectionCount() { return 0; }
inline void point(Site) {}

#endif // CIP_CHAOS

} // namespace chaos
} // namespace cip

/// The hook instrumented code uses. Expands to nothing in default builds so
/// the guarded translation units carry no chaos code at all.
#if CIP_CHAOS
#define CIP_CHAOS_POINT(S) ::cip::chaos::point(::cip::chaos::Site::S)
#else
#define CIP_CHAOS_POINT(S)                                                     \
  do {                                                                         \
  } while (false)
#endif

/// Annotation for workload task bodies the speculative engines race on *by
/// design*: SPECCROSS may execute cross-invocation-dependent tasks
/// concurrently and roll back, so TSan would flag them, but the
/// checksum-vs-sequential differential oracle (plus the chaos-perturbed fuzz
/// sweeps above) is what actually verifies the outcome. Expands to
/// CIP_NO_SANITIZE_THREAD (support/Compiler.h has the full sanitizer
/// rationale); it lives here, with the oracle machinery, because the oracle
/// is the justification — use it on nothing the oracle does not cover.
#define CIP_SPECULATIVE_TASK_BODY CIP_NO_SANITIZE_THREAD

#endif // CIP_SUPPORT_CHAOS_H

//===- server/RegionServer.cpp - Concurrent region invocations -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "server/RegionServer.h"

#include "harness/Executor.h"
#include "support/Chaos.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace cip;
using namespace cip::server;
using cip::telemetry::Counter;
using cip::telemetry::EventKind;
using cip::telemetry::Hist;

//===----------------------------------------------------------------------===//
// Environment knobs
//===----------------------------------------------------------------------===//

namespace {

[[noreturn]] void serverEnvError(const char *Var, const char *Value,
                                 const char *Expected) {
  std::fprintf(stderr, "error: %s='%s' is invalid: expected %s\n", Var, Value,
               Expected);
  // _Exit, not exit: matches the CIP_CHAOS/CIP_POLICY convention — a config
  // error wants immediate, clean-status death without running
  // atexit/destructors while runtime threads may be live.
  std::_Exit(2);
}

bool parseDecimal(const char *S, std::uint64_t &Out) {
  if (!*S)
    return false;
  char *End = nullptr;
  const unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End != '\0' || std::strchr(S, '-'))
    return false;
  Out = static_cast<std::uint64_t>(V);
  return true;
}

/// Strictly parses \p Var as a positive worker/slot count.
unsigned envPositive(const char *Var, const char *Expected, unsigned Fallback) {
  const char *S = std::getenv(Var);
  if (!S)
    return Fallback;
  std::uint64_t V = 0;
  if (!parseDecimal(S, V) || V == 0 || V > 0xffffffffULL)
    serverEnvError(Var, S, Expected);
  return static_cast<unsigned>(V);
}

unsigned resolveWorkers(unsigned Workers) {
  if (Workers)
    return Workers;
  const unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

} // namespace

ServerConfig server::configFromEnv(ServerConfig Base) {
  Base.Workers = envPositive("CIP_SERVER_WORKERS",
                             "a positive total worker budget", Base.Workers);
  Base.QueueCapacity =
      envPositive("CIP_SERVER_QUEUE", "a positive submission queue capacity",
                  Base.QueueCapacity);
  Base.MinWorkers =
      envPositive("CIP_SERVER_MIN_WORKERS",
                  "a positive minimum profitable width", Base.MinWorkers);
  if (const char *S = std::getenv("CIP_SERVER_ADMISSION")) {
    if (std::strcmp(S, "block") == 0)
      Base.Admission = AdmissionPolicy::Block;
    else if (std::strcmp(S, "reject") == 0)
      Base.Admission = AdmissionPolicy::Reject;
    else
      serverEnvError("CIP_SERVER_ADMISSION", S, "'block' or 'reject'");
  }
  Base.Workers = resolveWorkers(Base.Workers);
  // Nested regions that escape the leased lanes fall back to spawned
  // threads; cap that path with the same machine budget the server
  // arbitrates, so no code path exceeds CIP_SERVER_WORKERS live workers.
  ThreadPool::setSpawnCap(Base.Workers);
  return Base;
}

//===----------------------------------------------------------------------===//
// RegionServer
//===----------------------------------------------------------------------===//

/// The should_invoc gate's verdict for one head-of-queue request.
struct RegionServer::Decision {
  enum class Mode : unsigned {
    Parallel,   ///< requested technique at the granted width
    Narrow,     ///< degraded: plain barrier at the free width
    Sequential, ///< degraded: sequential in the caller's thread, no grant
  };
  Mode M = Mode::Sequential;
  unsigned Granted = 0;
  unsigned EffMin = 1; ///< the minimum width the gate compared against
};

RegionServer::RegionServer(const ServerConfig &Config)
    : Cfg(Config), Tel("server", 1) {
  Cfg.Workers = resolveWorkers(Cfg.Workers);
  if (Cfg.QueueCapacity == 0)
    Cfg.QueueCapacity = 1;
  Free = Cfg.Workers;
  if (Tel.tracing())
    Tel.nameLane(0, "admission");
}

RegionServer::~RegionServer() { shutdown(); }

unsigned RegionServer::availableWorkers() const {
  std::lock_guard<std::mutex> L(Mu);
  return Free;
}

unsigned RegionServer::workersInUse() const {
  std::lock_guard<std::mutex> L(Mu);
  return Cfg.Workers - Free;
}

unsigned RegionServer::queueDepth() const {
  std::lock_guard<std::mutex> L(Mu);
  return QueueDepth;
}

ServerStats RegionServer::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

bool RegionServer::decideLocked(const RegionRequest &Req, Decision &Out,
                                bool HoldActive) {
  // Normalize the request against the budget: a width of 0 asks for
  // everything, and the minimum profitable width can never exceed what was
  // asked for (or what exists).
  const unsigned Width =
      Req.Width ? (Req.Width < Cfg.Workers ? Req.Width : Cfg.Workers)
                : Cfg.Workers;
  unsigned EffMin = Req.MinWorkers ? Req.MinWorkers : Cfg.MinWorkers;
  if (EffMin == 0)
    EffMin = 1;
  if (EffMin > Width)
    EffMin = Width;
  Out.EffMin = EffMin;

  if (Free >= EffMin) {
    Out.M = Decision::Mode::Parallel;
    Out.Granted = Width < Free ? Width : Free;
    return true;
  }
  if (!Cfg.AllowDegrade)
    return false; // hold the queue head until the minimum width frees
  if (HoldActive)
    return false; // duration gate: the plan predicts waiting beats degrading
  // The should_invoc gate, mirroring cpf's getNumAvailableWorkers()
  // fallback: below the profitable width, take what little is free as a
  // plain barrier region, or run sequentially in the caller's own thread —
  // never park the invocation waiting for the machine to drain.
  if (Free >= 2) {
    Out.M = Decision::Mode::Narrow;
    Out.Granted = Free;
    return true;
  }
  Out.M = Decision::Mode::Sequential;
  Out.Granted = 0;
  return true;
}

RequestResult RegionServer::submit(const RegionRequest &Req) {
  assert(Req.W && "request without a workload");
  const std::uint64_t T0 = nowNanos();
  // The plan duration gate's hold budget: the predicted parallel benefit
  // for this region's epochs. A request worth holding is one whose
  // degraded (ultimately sequential) execution is predicted to cost more
  // than parking it until budget frees — so the hold is bounded by exactly
  // that predicted difference. 0 (no plan, no predicted benefit, or
  // degradation disabled anyway) keeps the instantaneous gate.
  std::uint64_t HoldNs = 0;
  if (Req.Plan && Cfg.AllowDegrade) {
    const std::uint32_t Epochs = Req.W->numEpochs();
    const double BenefitSec = Req.Plan->predictedSequentialSeconds(Epochs) -
                              Req.Plan->predictedSeconds(Epochs);
    if (BenefitSec > 0.0)
      HoldNs = static_cast<std::uint64_t>(BenefitSec * 1e9);
  }
  const auto HoldDeadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(HoldNs);
  Decision D;
  std::uint64_t WaitNs = 0;
  bool Held = false;
  {
    std::unique_lock<std::mutex> L(Mu);
    ++Stats.Submitted;

    const auto RejectLocked = [&]() -> RequestResult {
      ++Stats.Rejected;
      Tel.add(0, Counter::ServerRejected);
      Tel.instant(0, EventKind::ServerReject, QueueDepth);
      if (ShuttingDown)
        DrainCv.notify_all();
      RequestResult R;
      R.Status = RequestStatus::Rejected;
      R.QueueWaitNs = nowNanos() - T0;
      return R;
    };

    if (ShuttingDown)
      return RejectLocked();

    // Admission: the submission queue is bounded.
    if (QueueDepth >= Cfg.QueueCapacity) {
      if (Cfg.Admission == AdmissionPolicy::Reject)
        return RejectLocked();
      SpaceCv.wait(L, [this] {
        return ShuttingDown || QueueDepth < Cfg.QueueCapacity;
      });
      if (ShuttingDown)
        return RejectLocked();
    }

    // Admitted: take a FIFO ticket and wait for the arbitration turn. Only
    // the serving ticket evaluates the gate, so grants are strictly FIFO
    // and a starved head request cannot be overtaken.
    ++QueueDepth;
    const std::uint64_t Ticket = NextTicket++;
    bool HoldActive = HoldNs > 0;
    for (;;) {
      if (ShuttingDown)
        break;
      if (ServingTicket == Ticket && decideLocked(Req, D, HoldActive))
        break;
      if (ServingTicket == Ticket && HoldActive && !Held) {
        // First time the gate would have degraded: the hold begins.
        Held = true;
        ++Stats.PlanHeld;
        Tel.instant(0, EventKind::ServerHold, Free, HoldNs);
      }
      if (HoldActive) {
        if (GrantCv.wait_until(L, HoldDeadline) == std::cv_status::timeout) {
          HoldActive = false; // budget spent: degrade as usual from here on
          if (Held)
            ++Stats.PlanHoldExpired;
        }
      } else {
        GrantCv.wait(L);
      }
    }
    --QueueDepth;
    if (ShuttingDown) {
      SpaceCv.notify_one();
      return RejectLocked();
    }

    ++ServingTicket;
    Free -= D.Granted;
    ++InFlight;
    WaitNs = nowNanos() - T0;

    // Per-request admission telemetry (the trace ring is single-writer;
    // Mu is that writer).
    Tel.add(0, Counter::ServerAdmitted);
    Tel.add(0, Counter::ServerQueueWaitNs, WaitNs);
    Tel.recordHist(0, Hist::ServerQueueNs, WaitNs);
    Tel.instant(0, EventKind::ServerAdmit, D.Granted, WaitNs);
    if (D.M != Decision::Mode::Parallel) {
      Tel.add(0, Counter::ServerDegraded);
      Tel.instant(0, EventKind::ServerDegrade, Free + D.Granted, D.EffMin);
    }
    // Self-maintained twin of the telemetry histogram so the traffic bench
    // reports queue-wait percentiles in CIP_TELEMETRY=0 builds too.
    Stats.QueueWait.Buckets[telemetry::histBucketOf(WaitNs)] += 1;
    Stats.QueueWait.SumNs += WaitNs;
    if (WaitNs > Stats.QueueWait.MaxNs)
      Stats.QueueWait.MaxNs = WaitNs;
  }
  // The grant decision advanced ServingTicket and may have freed a queue
  // slot: wake the next waiter in line and one queue-full submitter.
  GrantCv.notify_all();
  SpaceCv.notify_one();

  CIP_CHAOS_POINT(ServerAdmit);
  RequestResult R = executeGrant(Req, D);
  R.QueueWaitNs = WaitNs;
  R.PlanHeld = Held;
  CIP_CHAOS_POINT(ServerRelease);

  {
    std::lock_guard<std::mutex> L(Mu);
    Free += D.Granted;
    --InFlight;
    ++Stats.Completed;
    if (D.M == Decision::Mode::Narrow)
      ++Stats.DegradedNarrow;
    else if (D.M == Decision::Mode::Sequential)
      ++Stats.DegradedSequential;
    if (ShuttingDown && InFlight == 0)
      DrainCv.notify_all();
  }
  // Returned workers may unblock the head of the queue.
  GrantCv.notify_all();
  return R;
}

RequestResult RegionServer::executeGrant(const RegionRequest &Req,
                                         const Decision &D) {
  RequestResult R;
  R.Status = RequestStatus::Completed;
  R.Granted = D.Granted;
  R.Degraded = D.M != Decision::Mode::Parallel;

  workloads::Workload &W = *Req.W;
  harness::ExecResult Exec;

  if (D.M == Decision::Mode::Sequential) {
    // No grant at all: the caller's own thread runs the untouched
    // sequential original, exactly cpf's should_invoc fallback path.
    R.Technique = "sequential";
    Exec = harness::runSequential(W);
  } else {
    // Granted regions execute on a dedicated lane lease, so concurrent
    // grants genuinely overlap instead of serializing on the global
    // fork/join pool. (The SPECCROSS checker thread rides outside the
    // lease: it is a coordination thread, blocked except when validating,
    // and the paper's worker budget counts workers.)
    ThreadPool::Lease Lanes = ThreadPool::global().acquireLanes(D.Granted);
    ThreadPool::LeaseScope Scope(Lanes);
    if (D.M == Decision::Mode::Narrow) {
      R.Technique = "barrier";
      Exec = harness::runBarrier(W, D.Granted);
    } else if (Req.Policy) {
      R.Technique = "adaptive";
      Exec = harness::runAdaptive(W, D.Granted, *Req.Policy);
    } else {
      // Fixed technique through the harness vtable — the same dispatch
      // rows the adaptive executor uses. Techniques the workload does not
      // support fall back to the always-applicable barrier row.
      policy::Technique Tech = Req.Tech;
      if (!(harness::applicabilityMask(W) & policy::techniqueBit(Tech)))
        Tech = policy::Technique::Barrier;
      const harness::TechniqueVtable &V = harness::techniqueVtable(Tech);
      harness::AdaptiveContext Ctx;
      Ctx.NumThreads = D.Granted;
      Ctx.Scheme = W.preferredSignature();
      if (Tech == policy::Technique::SpecCross)
        W.registerState(Ctx.Registry);
      R.Technique = V.Name;
      Exec = V.RunWindow(Ctx, W);
    }
  }

  R.Seconds = Exec.Seconds;
  // The vtable window runners leave Checksum unset (the adaptive executor
  // computes it once at region end); the server's contract is a checksum on
  // every result, so digest uniformly here.
  R.Checksum = W.checksum();
  return R;
}

void RegionServer::shutdown() {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Finished)
      return;
    ShuttingDown = true;
  }
  // Every queued waiter and queue-full submitter drains via rejection.
  GrantCv.notify_all();
  SpaceCv.notify_all();
  std::unique_lock<std::mutex> L(Mu);
  DrainCv.wait(L, [this] { return InFlight == 0 && QueueDepth == 0; });
  if (!Finished) {
    Finished = true;
    Tel.finish();
  }
}

//===- server/RegionServer.h - Concurrent region invocations ---*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived region server: many client threads submit parallel-region
/// invocation requests, and the server runs them *concurrently* against one
/// machine-wide worker budget. Every executor below this layer assumes it
/// owns the machine; this is the layer that makes that assumption safe when
/// it no longer holds — the repo's analogue of cpf's MTCG invocation guard,
/// where generated code checks `getNumAvailableWorkers()` and falls back to
/// the sequential original when workers are scarce, and of task-based
/// runtimes that multiplex many parallelized programs onto one scheduler
/// (Fonseca et al., PAPERS.md).
///
/// Three cooperating pieces (DESIGN.md §12):
///
///  * **Admission control**: a bounded submission queue (CIP_SERVER_QUEUE).
///    When it is full, a submission either blocks for space or is rejected
///    outright (AdmissionPolicy). Admitted requests are served strictly
///    FIFO by ticket.
///
///  * **Worker arbitration**: a single budget of CIP_SERVER_WORKERS workers.
///    Each request asks for a width; the head-of-queue request is granted
///    min(width, free) workers when at least its minimum profitable width
///    is free, and the grant returns to the budget when the region
///    completes. Granted regions execute on dedicated ThreadPool lane
///    leases, so disjoint grants genuinely overlap instead of serializing
///    on the global fork/join pool.
///
///  * **The should_invoc gate**: when fewer than MinWorkers are free, the
///    request is not parked until the machine drains — mirroring cpf, the
///    gate *degrades* it on the spot: to a narrower plain-barrier region
///    when at least two workers are free, else to sequential execution in
///    the caller's own thread (consuming no budget at all). Degraded
///    execution is checksum-identical to the requested technique; only the
///    time-to-result changes. Degradation can be disabled per request
///    stream (AllowDegrade=false), in which case the head waits for budget.
///
/// Execution of a grant goes through the harness TechniqueVtable, so both
/// fixed techniques and the adaptive policy engine work per request.
/// Per-request queue-wait, admission, degrade, and reject events land in
/// the server's RegionTelemetry ("server" region): counters and the
/// server_queue_ns histogram for bench JSON, instants for Chrome traces,
/// everything for CIP_REPORT run reports.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_SERVER_REGIONSERVER_H
#define CIP_SERVER_REGIONSERVER_H

#include "harness/Adaptive.h"
#include "policy/Policy.h"
#include "telemetry/Histogram.h"
#include "telemetry/Telemetry.h"
#include "workloads/Workload.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cip {
namespace server {

/// What a full submission queue does to the next submission.
enum class AdmissionPolicy : unsigned {
  Block,  ///< wait until a queue slot frees (backpressure onto the client)
  Reject, ///< fail the submission immediately (load shedding)
};

/// Server-wide configuration. The environment knobs (strict, garbage exits
/// 2 like every CIP_* knob):
///
///   CIP_SERVER_WORKERS      total worker budget (default: hardware
///                           concurrency, at least 1)
///   CIP_SERVER_QUEUE        submission queue capacity (default 64)
///   CIP_SERVER_MIN_WORKERS  default minimum profitable width for requests
///                           that do not specify one (default 2)
///   CIP_SERVER_ADMISSION    block | reject (default block)
struct ServerConfig {
  /// Total worker budget arbitrated across concurrent regions. 0 means
  /// hardware concurrency (at least 1).
  unsigned Workers = 0;
  /// Bounded submission queue capacity (requests admitted but not yet
  /// granted). Must be at least 1.
  unsigned QueueCapacity = 64;
  /// Default minimum profitable width: requests granted fewer workers than
  /// this degrade (or wait, when degradation is off).
  unsigned MinWorkers = 2;
  /// What a full queue does to the next submission.
  AdmissionPolicy Admission = AdmissionPolicy::Block;
  /// When false, the should_invoc gate never degrades: the head request
  /// waits until its minimum width is free (tests use this to build
  /// deterministic backlogs).
  bool AllowDegrade = true;
};

/// Overrides \p Base from the CIP_SERVER_* environment knobs (see
/// ServerConfig) and resolves Workers=0 to hardware concurrency. Also
/// installs the resolved budget as the ThreadPool spawn-fallback cap, so
/// nested regions escaping to spawned threads respect the same machine
/// budget. Malformed values exit 2.
ServerConfig configFromEnv(ServerConfig Base = ServerConfig());

/// One parallel-region invocation request.
struct RegionRequest {
  /// The region to run. The submitting client owns it; it must stay alive
  /// until submit() returns and must not be concurrently submitted.
  workloads::Workload *W = nullptr;
  /// Requested technique, used when \c Policy is null.
  policy::Technique Tech = policy::Technique::Barrier;
  /// Non-null routes the grant through the adaptive policy engine
  /// (runAdaptive) instead of the fixed-technique vtable row.
  const policy::PolicyConfig *Policy = nullptr;
  /// Requested worker width. 0 means the whole budget.
  unsigned Width = 0;
  /// Minimum profitable width for this region; 0 means the server default
  /// (ServerConfig::MinWorkers).
  unsigned MinWorkers = 0;
  /// Non-null: a profile-guided plan for this region (DESIGN.md §13). The
  /// should_invoc gate then weighs degradation against the plan's predicted
  /// region duration: instead of degrading on the spot, the request is
  /// *held* at the head of the queue for up to the predicted parallel
  /// benefit (predicted sequential minus predicted planned time for the
  /// region's epochs) before the gate falls back to degrading as usual.
  /// The plan must stay alive until submit() returns. Null keeps the
  /// instantaneous cpf-style gate.
  const plan::RegionPlan *Plan = nullptr;
};

/// How a submission ended.
enum class RequestStatus : unsigned {
  Completed, ///< ran to completion (possibly degraded); Checksum is valid
  Rejected,  ///< never ran: queue full under Reject, or server shut down
};

/// What one submission produced.
struct RequestResult {
  RequestStatus Status = RequestStatus::Rejected;
  /// True when the should_invoc gate degraded the request below its
  /// requested technique (narrower barrier or sequential).
  bool Degraded = false;
  /// True when the plan's duration gate held this request instead of
  /// degrading it immediately (whether budget later freed or the hold
  /// expired into degradation).
  bool PlanHeld = false;
  /// Static name of what actually ran: a techniqueVtable Name, "adaptive",
  /// or "sequential"; "" when rejected.
  const char *Technique = "";
  /// Workers granted from the budget (0 for sequential degradation).
  unsigned Granted = 0;
  /// Nanoseconds from submission to the grant/degrade decision (includes
  /// any time blocked on a full queue).
  std::uint64_t QueueWaitNs = 0;
  /// Execution wall time (the engine's own timing).
  double Seconds = 0.0;
  /// Post-execution workload checksum — bit-identical to sequential
  /// execution for every path, degraded ones included.
  std::uint64_t Checksum = 0;
};

/// Aggregate server statistics (one consistent snapshot).
struct ServerStats {
  std::uint64_t Submitted = 0;
  std::uint64_t Completed = 0;
  std::uint64_t Rejected = 0;
  /// Completed via the narrower plain-barrier degrade path.
  std::uint64_t DegradedNarrow = 0;
  /// Completed sequentially in the caller's thread.
  std::uint64_t DegradedSequential = 0;
  /// Requests the plan duration gate held instead of degrading on the spot.
  std::uint64_t PlanHeld = 0;
  /// Held requests whose hold budget expired (they then degraded as usual).
  std::uint64_t PlanHoldExpired = 0;
  /// Per-request queue-wait distribution (submission to grant decision).
  telemetry::HistogramData QueueWait;
};

/// The server. Thread-safe: any number of client threads may call submit()
/// concurrently; each call runs its region (in the calling thread for
/// degraded-sequential grants, on leased pool lanes otherwise) and returns
/// when the region completes. See the file comment for the state machine.
class RegionServer {
public:
  explicit RegionServer(const ServerConfig &Config);
  ~RegionServer();

  RegionServer(const RegionServer &) = delete;
  RegionServer &operator=(const RegionServer &) = delete;

  /// Submits one region invocation and blocks until it completes (or is
  /// rejected). Safe to call from many threads concurrently.
  RequestResult submit(const RegionRequest &Req);

  /// Workers currently free in the budget — the cpf
  /// getNumAvailableWorkers() mirror clients may consult before choosing a
  /// width. Advisory: the value may change before a subsequent submit().
  unsigned availableWorkers() const;

  /// Workers currently granted to in-flight regions.
  unsigned workersInUse() const;

  /// Requests admitted but not yet granted (tests and load monitors).
  unsigned queueDepth() const;

  const ServerConfig &config() const { return Cfg; }

  /// Consistent snapshot of the aggregate statistics.
  ServerStats stats() const;

  /// Drains the server: queued-but-ungranted requests are rejected, new
  /// submissions fail, and the call blocks until every in-flight region
  /// completes. Finishes the server telemetry region (trace/report export).
  /// Idempotent; the destructor calls it.
  void shutdown();

private:
  struct Decision;

  /// Evaluates the should_invoc gate for the head-of-queue request under
  /// Mu. Returns false when the request must keep waiting: degradation off
  /// and the minimum width not free, or — with \p HoldActive — a plan's
  /// duration gate still holding out for budget (see RegionRequest::Plan).
  bool decideLocked(const RegionRequest &Req, Decision &Out, bool HoldActive);

  RequestResult executeGrant(const RegionRequest &Req, const Decision &D);

  ServerConfig Cfg;

  mutable std::mutex Mu;
  std::condition_variable GrantCv; ///< queued requests park here
  std::condition_variable SpaceCv; ///< queue-full blocked submitters
  std::condition_variable DrainCv; ///< shutdown waits for in-flight here

  unsigned Free = 0;          ///< workers not granted to any region
  unsigned QueueDepth = 0;    ///< admitted, not yet granted
  std::uint64_t NextTicket = 0;
  std::uint64_t ServingTicket = 0; ///< FIFO: only this ticket may decide
  unsigned InFlight = 0;      ///< granted, still executing
  bool ShuttingDown = false;
  bool Finished = false; ///< telemetry finished (shutdown ran)

  ServerStats Stats;

  /// Single-lane control region: every record happens under Mu (the trace
  /// ring is single-writer; the admission lock is that writer).
  telemetry::RegionTelemetry Tel;
};

} // namespace server
} // namespace cip

#endif // CIP_SERVER_REGIONSERVER_H

//===- memory/PageDirty.cpp - mprotect/SIGSEGV dirty tracking ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// Signal-handler safety rules (DESIGN.md §16):
///
///  - Everything the handler reads or writes — the active-instance table,
///    each instance's region table, dirty bitmaps, and fault-latency ring —
///    lives either in static storage or in a dedicated anonymous mapping,
///    never on a page that could be inside (or share a page-aligned edge
///    with) a tracked region. Tracked pages are PROT_READ while armed, and a
///    write fault raised *inside* the SIGSEGV handler, where SIGSEGV is
///    blocked, is instant process death.
///  - The handler calls only async-signal-safe primitives: relaxed/acq
///    atomics, clock_gettime, mprotect, sigaction/raise on the not-ours
///    path. No allocation, no locks, no stdio.
///  - Protection state only *tightens* (RW -> R) on the control path while
///    workers are quiescent (snapshot/restore/teardown); the handler only
///    loosens it (R -> RW) after recording the page, so a racing second
///    fault on the same page at worst records the same bit twice.
///  - A fault the table does not claim chains to the previously installed
///    disposition, so sanitizer/crash handlers keep working.
///
//===----------------------------------------------------------------------===//

#include "memory/Substrates.h"

#include "support/Chaos.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/mman.h>
#include <time.h>

using namespace cip;
using namespace cip::memory;

namespace {

/// Handler-visible view of one tracked region: its page-aligned span and the
/// words of the shared dirty bitmap covering it.
struct HandlerRegion {
  std::uintptr_t PageStart;
  std::uintptr_t PageEnd;
  std::atomic<std::uint64_t> *Bits;
};

constexpr std::size_t MaxHandlerRegions = 256;
constexpr std::size_t FaultRingSize = 4096;

} // namespace

/// The per-instance control block the SIGSEGV handler works against. Lives
/// at the head of one anonymous mapping; the dirty-bitmap words follow it in
/// the same mapping. Published to the active table with a release store only
/// after it is fully built, and unpublished before teardown.
struct PageDirtySubstrate::HandlerBlock {
  std::size_t PageSize;
  std::size_t NumRegions;
  HandlerRegion Regions[MaxHandlerRegions];
  std::atomic<std::uint64_t> Faults;
  std::atomic<std::uint64_t> FaultsDrained;
  std::atomic<std::uint32_t> RingHead;
  std::atomic<std::uint64_t> RingNs[FaultRingSize];
  // Bitmap words follow, pointed into by Regions[i].Bits.
};

namespace {

/// Active control blocks, scanned by the handler. Fixed static table so the
/// handler never touches heap-managed memory; 64 concurrently *armed*
/// registries is far beyond what the region server's worker budget admits.
constexpr int MaxActiveBlocks = 64;
std::atomic<PageDirtySubstrate::HandlerBlock *> ActiveBlocks[MaxActiveBlocks];

std::atomic<bool> HandlerInstalled{false};
struct sigaction PreviousSegv;

std::uint64_t nowNs() {
  struct timespec TS;
  ::clock_gettime(CLOCK_MONOTONIC, &TS);
  return static_cast<std::uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(TS.tv_nsec);
}

/// Hands an unclaimed fault to whatever disposition was installed before
/// ours. Restoring the previous sigaction and returning re-raises the fault
/// at the same instruction under that disposition.
void chainUnclaimed(int Sig, siginfo_t *Info, void *Ctx) {
  if ((PreviousSegv.sa_flags & SA_SIGINFO) && PreviousSegv.sa_sigaction) {
    PreviousSegv.sa_sigaction(Sig, Info, Ctx);
    return;
  }
  if (!(PreviousSegv.sa_flags & SA_SIGINFO) && PreviousSegv.sa_handler &&
      PreviousSegv.sa_handler != SIG_DFL && PreviousSegv.sa_handler != SIG_IGN) {
    PreviousSegv.sa_handler(Sig);
    return;
  }
  ::sigaction(SIGSEGV, &PreviousSegv, nullptr);
}

void segvHandler(int Sig, siginfo_t *Info, void *Ctx) {
  const std::uintptr_t Addr = reinterpret_cast<std::uintptr_t>(Info->si_addr);
  const std::uint64_t T0 = nowNs();
  bool Claimed = false;
  std::uintptr_t FaultPage = 0;
  std::size_t FaultPageSize = 0;
  PageDirtySubstrate::HandlerBlock *Owner = nullptr;
  for (int I = 0; I < MaxActiveBlocks; ++I) {
    PageDirtySubstrate::HandlerBlock *B =
        ActiveBlocks[I].load(std::memory_order_acquire);
    if (!B)
      continue;
    for (std::size_t R = 0; R < B->NumRegions; ++R) {
      const HandlerRegion &HR = B->Regions[R];
      if (Addr < HR.PageStart || Addr >= HR.PageEnd)
        continue;
      // Record before re-enabling writes: a racing thread that slips a
      // store in after the mprotect below must still find the bit set.
      CIP_CHAOS_POINT(FaultRecord);
      const std::size_t Page = (Addr - HR.PageStart) / B->PageSize;
      HR.Bits[Page >> 6].fetch_or(std::uint64_t{1} << (Page & 63),
                                  std::memory_order_relaxed);
      // Edge pages of distinct sub-page regions can coincide; every
      // overlapping region (any instance) gets its bit before the single
      // unprotect, so none of them loses the write.
      Claimed = true;
      FaultPage = HR.PageStart + Page * B->PageSize;
      FaultPageSize = B->PageSize;
      if (!Owner)
        Owner = B;
    }
  }
  if (!Claimed) {
    chainUnclaimed(Sig, Info, Ctx);
    return;
  }
  ::mprotect(reinterpret_cast<void *>(FaultPage), FaultPageSize,
             PROT_READ | PROT_WRITE);
  Owner->Faults.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t Slot =
      Owner->RingHead.fetch_add(1, std::memory_order_relaxed) %
      FaultRingSize;
  Owner->RingNs[Slot].store(nowNs() - T0, std::memory_order_relaxed);
}

void installHandlerOnce() {
  bool Expected = false;
  if (!HandlerInstalled.compare_exchange_strong(Expected, true,
                                                std::memory_order_acq_rel))
    return;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_sigaction = segvHandler;
  SA.sa_flags = SA_SIGINFO;
  sigemptyset(&SA.sa_mask);
  if (::sigaction(SIGSEGV, &SA, &PreviousSegv) != 0) {
    std::fprintf(stderr,
                 "error: pagedirty checkpoint substrate: sigaction(SIGSEGV) "
                 "failed: %s\n",
                 std::strerror(errno));
    std::_Exit(2);
  }
}

void publishBlock(PageDirtySubstrate::HandlerBlock *B) {
  for (int I = 0; I < MaxActiveBlocks; ++I) {
    PageDirtySubstrate::HandlerBlock *Expected = nullptr;
    if (ActiveBlocks[I].compare_exchange_strong(Expected, B,
                                                std::memory_order_release,
                                                std::memory_order_relaxed))
      return;
  }
  std::fprintf(stderr,
               "error: pagedirty checkpoint substrate: more than %d armed "
               "registries in one process\n",
               MaxActiveBlocks);
  std::_Exit(2);
}

void unpublishBlock(PageDirtySubstrate::HandlerBlock *B) {
  for (int I = 0; I < MaxActiveBlocks; ++I) {
    PageDirtySubstrate::HandlerBlock *Expected = B;
    if (ActiveBlocks[I].compare_exchange_strong(Expected, nullptr,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed))
      return;
  }
}

void protectSpan(std::uintptr_t Begin, std::uintptr_t End, int Prot) {
  if (Begin >= End)
    return;
  if (::mprotect(reinterpret_cast<void *>(Begin), End - Begin, Prot) != 0) {
    std::fprintf(stderr,
                 "error: pagedirty checkpoint substrate: mprotect(%p, %zu) "
                 "failed: %s\n",
                 reinterpret_cast<void *>(Begin),
                 static_cast<std::size_t>(End - Begin), std::strerror(errno));
    std::_Exit(2);
  }
}

/// Loosens a span back to read-write at teardown, tolerating spans the
/// client has already handed back to the OS: a registry may outlive its
/// registered buffers (glibc munmaps large freed chunks out from under the
/// tracker), and mprotect on an unmapped span fails with ENOMEM. That is
/// safe to ignore exactly here — an unmapped span cannot fault, and any
/// future mapping at the same address starts writable. Every other errno,
/// and every *tightening* mprotect, stays fatal via protectSpan.
void unprotectSpanAtTeardown(std::uintptr_t Begin, std::uintptr_t End) {
  if (Begin >= End)
    return;
  if (::mprotect(reinterpret_cast<void *>(Begin), End - Begin,
                 PROT_READ | PROT_WRITE) != 0 &&
      errno != ENOMEM) {
    std::fprintf(stderr,
                 "error: pagedirty checkpoint substrate: teardown mprotect"
                 "(%p, %zu) failed: %s\n",
                 reinterpret_cast<void *>(Begin),
                 static_cast<std::size_t>(End - Begin), std::strerror(errno));
    std::_Exit(2);
  }
}

} // namespace

PageDirtySubstrate::~PageDirtySubstrate() {
  teardownTracking();
  if (Block)
    ::munmap(Block, BlockBytes);
}

void PageDirtySubstrate::teardownTracking() {
  if (!Tracking)
    return;
  // Unprotect before unpublishing: once pages are writable no new fault can
  // arrive, so the handler never sees a protected page without a block.
  for (const TrackedRegion &R : Regions)
    unprotectSpanAtTeardown(R.PageStart, R.PageEnd);
  unpublishBlock(Block);
  Tracking = false;
}

void PageDirtySubstrate::buildHandlerBlock() {
  if (Block) {
    ::munmap(Block, BlockBytes);
    Block = nullptr;
    BlockBytes = 0;
  }
  if (Regions.empty())
    return;
  if (Regions.size() > MaxHandlerRegions) {
    std::fprintf(stderr,
                 "error: pagedirty checkpoint substrate: %zu regions exceeds "
                 "the handler table capacity (%zu)\n",
                 Regions.size(), MaxHandlerRegions);
    std::_Exit(2);
  }
  std::size_t BitmapWords = 0;
  for (const TrackedRegion &R : Regions)
    BitmapWords += (R.NumPages + 63) / 64;
  BlockBytes = sizeof(HandlerBlock) +
               BitmapWords * sizeof(std::atomic<std::uint64_t>);
  void *Mem = ::mmap(nullptr, BlockBytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED) {
    std::fprintf(stderr,
                 "error: pagedirty checkpoint substrate: mmap(%zu) failed: "
                 "%s\n",
                 BlockBytes, std::strerror(errno));
    std::_Exit(2);
  }
  Block = new (Mem) HandlerBlock();
  Block->PageSize = pageSize();
  Block->NumRegions = Regions.size();
  auto *Words = reinterpret_cast<std::atomic<std::uint64_t> *>(
      reinterpret_cast<unsigned char *>(Mem) + sizeof(HandlerBlock));
  std::size_t WordOffset = 0;
  for (std::size_t I = 0; I < Regions.size(); ++I) {
    Block->Regions[I] = {Regions[I].PageStart, Regions[I].PageEnd,
                         Words + WordOffset};
    WordOffset += (Regions[I].NumPages + 63) / 64;
  }
}

void PageDirtySubstrate::setRegions(const std::vector<RegionDesc> &In) {
  teardownTracking();
  TotalBytes = layoutRegions(In, Regions, TotalPages);
  buildHandlerBlock();
  Backing.clear();
  LastDirtyPages = 0;
  LastBytesCopied = 0;
}

void PageDirtySubstrate::syncDirtyPages(bool ToBacking, std::uint64_t &Pages,
                                        std::uint64_t &Bytes) {
  const std::size_t PS = pageSize();
  for (std::size_t RI = 0; RI < Regions.size(); ++RI) {
    const TrackedRegion &R = Regions[RI];
    // Block->Regions is index-aligned with Regions by construction; matching
    // by address would confuse sub-page regions sharing a start page.
    HandlerRegion *HR = &Block->Regions[RI];
    const std::size_t Words = (R.NumPages + 63) / 64;
    const std::uintptr_t Begin = reinterpret_cast<std::uintptr_t>(R.Ptr);
    const std::uintptr_t End = Begin + R.Bytes;
    for (std::size_t W = 0; W < Words; ++W) {
      std::uint64_t Bits = HR->Bits[W].load(std::memory_order_relaxed);
      if (!Bits)
        continue;
      HR->Bits[W].store(0, std::memory_order_relaxed);
      while (Bits) {
        const unsigned Bit = __builtin_ctzll(Bits);
        Bits &= Bits - 1;
        const std::size_t Page = W * 64 + Bit;
        const std::uintptr_t PageBegin = R.PageStart + Page * PS;
        // Clamp to the registered bytes: edge pages may cover co-located
        // heap objects that are not ours to save or restore.
        const std::uintptr_t CopyBegin = PageBegin > Begin ? PageBegin : Begin;
        std::uintptr_t CopyEnd = PageBegin + PS;
        if (CopyEnd > End)
          CopyEnd = End;
        if (CopyBegin < CopyEnd) {
          unsigned char *Mem = reinterpret_cast<unsigned char *>(CopyBegin);
          unsigned char *Back =
              Backing.data() + R.BackingOffset + (CopyBegin - Begin);
          if (ToBacking)
            std::memcpy(Back, Mem, CopyEnd - CopyBegin);
          else
            std::memcpy(Mem, Back, CopyEnd - CopyBegin);
          Bytes += CopyEnd - CopyBegin;
        }
        ++Pages;
        protectSpan(PageBegin, PageBegin + PS, PROT_READ);
      }
    }
  }
}

void PageDirtySubstrate::takeSnapshot() {
  if (!Tracking) {
    // First snapshot after (re)registration: full copy, then arm tracking by
    // write-protecting every tracked page and publishing the control block.
    Backing.resize(TotalBytes);
    for (const TrackedRegion &R : Regions)
      std::memcpy(Backing.data() + R.BackingOffset, R.Ptr, R.Bytes);
    LastDirtyPages = TotalPages;
    LastBytesCopied = TotalBytes;
    if (Regions.empty())
      return;
    installHandlerOnce();
    publishBlock(Block);
    for (const TrackedRegion &R : Regions)
      protectSpan(R.PageStart, R.PageEnd, PROT_READ);
    Tracking = true;
    return;
  }
  std::uint64_t Pages = 0, Bytes = 0;
  syncDirtyPages(/*ToBacking=*/true, Pages, Bytes);
  LastDirtyPages = Pages;
  LastBytesCopied = Bytes;
}

void PageDirtySubstrate::restoreSnapshot() {
  CIP_CHECK(Tracking || Backing.size() == TotalBytes,
            "restore without a snapshot");
  if (!Tracking) {
    for (const TrackedRegion &R : Regions)
      std::memcpy(R.Ptr, Backing.data() + R.BackingOffset, R.Bytes);
    return;
  }
  // Pages dirtied since the snapshot are exactly the set bits; restoring
  // them from the backing and re-protecting re-arms tracking with the
  // memory image equal to the snapshot.
  std::uint64_t Pages = 0, Bytes = 0;
  syncDirtyPages(/*ToBacking=*/false, Pages, Bytes);
}

std::uint64_t PageDirtySubstrate::faultCount() const {
  if (!Block)
    return 0;
  return Block->Faults.load(std::memory_order_relaxed) -
         Block->FaultsDrained.load(std::memory_order_relaxed);
}

void PageDirtySubstrate::drainFaultNs(std::vector<std::uint64_t> &Out) {
  if (!Block)
    return;
  // Control-path only; workers are quiescent, so Head is stable. The ring
  // keeps the most recent FaultRingSize samples — enough for a latency
  // histogram; the counter still reports every fault.
  const std::uint32_t Head = Block->RingHead.load(std::memory_order_relaxed);
  const std::uint32_t N =
      Head < FaultRingSize ? Head : static_cast<std::uint32_t>(FaultRingSize);
  for (std::uint32_t I = 0; I < N; ++I)
    Out.push_back(Block->RingNs[I].load(std::memory_order_relaxed));
  Block->RingHead.store(0, std::memory_order_relaxed);
  Block->FaultsDrained.store(Block->Faults.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

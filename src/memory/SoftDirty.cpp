//===- memory/SoftDirty.cpp - Soft-dirty-bit checkpoint substrate --------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// Linux soft-dirty tracking: writing "4" to /proc/self/clear_refs clears a
/// per-PTE "written since" bit for the whole process; /proc/self/pagemap
/// bit 55 reports it per page. Snapshot scans the tracked page spans, copies
/// only dirty pages, and re-clears. No signal handler and no protection
/// changes, so this is the substrate sanitizer builds get (the sanitizers
/// own the SIGSEGV path).
///
/// Two sharp edges, both handled conservatively:
///  - clear_refs is process-wide. Concurrent instances would wipe each
///    other's bits, so every clear bumps a global epoch; an instance whose
///    recorded epoch is stale falls back to a full copy for that snapshot
///    and re-arms.
///  - Kernels without CONFIG_MEM_SOFT_DIRTY ignore the bit. A one-time
///    write-probe on a scratch mapping detects this; unsupported kernels
///    get full copies every snapshot (correct, just eager).
///
//===----------------------------------------------------------------------===//

#include "memory/Substrates.h"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

using namespace cip;
using namespace cip::memory;

namespace {

constexpr std::uint64_t SoftDirtyBit = std::uint64_t{1} << 55;

/// Global clear-epoch: bumped by every clear_refs write so concurrent
/// instances can detect that their bits were wiped.
std::atomic<std::uint64_t> ClearEpoch{1};

bool writeClearRefs() {
  const int Fd = ::open("/proc/self/clear_refs", O_WRONLY);
  if (Fd < 0)
    return false;
  const bool Ok = ::write(Fd, "4", 1) == 1;
  ::close(Fd);
  return Ok;
}

/// Reads the pagemap entries for [VAddr, VAddr + N pages) into Out.
/// Returns false on any short read (treat as "tracking unavailable").
bool readPagemap(int Fd, std::uintptr_t VAddr, std::uint64_t *Out,
                 std::size_t N) {
  const std::size_t PS = pageSize();
  const off_t Offset = static_cast<off_t>(VAddr / PS) * 8;
  std::size_t Done = 0;
  while (Done < N) {
    const ssize_t Got =
        ::pread(Fd, Out + Done, (N - Done) * 8, Offset + Done * 8);
    if (Got <= 0 || Got % 8 != 0)
      return false;
    Done += static_cast<std::size_t>(Got) / 8;
  }
  return true;
}

/// One-time kernel support probe: on a scratch page, cleared bits must read
/// clear and a write must set them again. Kernels without
/// CONFIG_MEM_SOFT_DIRTY fail one of the two legs.
bool probeSoftDirty() {
  const std::size_t PS = pageSize();
  void *Probe = ::mmap(nullptr, PS, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Probe == MAP_FAILED)
    return false;
  *static_cast<volatile unsigned char *>(Probe) = 1; // fault the page in
  bool Ok = false;
  const int Fd = ::open("/proc/self/pagemap", O_RDONLY);
  if (Fd >= 0 && writeClearRefs()) {
    ClearEpoch.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t Entry = 0;
    const std::uintptr_t VA = reinterpret_cast<std::uintptr_t>(Probe);
    if (readPagemap(Fd, VA, &Entry, 1) && !(Entry & SoftDirtyBit)) {
      *static_cast<volatile unsigned char *>(Probe) = 2;
      if (readPagemap(Fd, VA, &Entry, 1) && (Entry & SoftDirtyBit))
        Ok = true;
    }
  }
  if (Fd >= 0)
    ::close(Fd);
  ::munmap(Probe, PS);
  return Ok;
}

} // namespace

bool SoftDirtySubstrate::kernelSupported() {
  static const bool Supported = probeSoftDirty();
  return Supported;
}

SoftDirtySubstrate::~SoftDirtySubstrate() {
  if (PagemapFd >= 0)
    ::close(PagemapFd);
}

void SoftDirtySubstrate::setRegions(const std::vector<RegionDesc> &In) {
  TotalBytes = layoutRegions(In, Regions, TotalPages);
  Backing.clear();
  Tracking = false;
  MyClearEpoch = 0;
  LastDirtyPages = 0;
  LastBytesCopied = 0;
}

void SoftDirtySubstrate::arm() {
  if (!kernelSupported())
    return;
  if (PagemapFd < 0)
    PagemapFd = ::open("/proc/self/pagemap", O_RDONLY);
  if (PagemapFd < 0 || !writeClearRefs()) {
    MyClearEpoch = 0;
    return;
  }
  MyClearEpoch = ClearEpoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool SoftDirtySubstrate::armed() const {
  return MyClearEpoch != 0 && PagemapFd >= 0 &&
         ClearEpoch.load(std::memory_order_relaxed) == MyClearEpoch;
}

void SoftDirtySubstrate::fullCopy(bool ToBacking, std::uint64_t &Pages,
                                  std::uint64_t &Bytes) {
  for (const TrackedRegion &R : Regions) {
    if (ToBacking)
      std::memcpy(Backing.data() + R.BackingOffset, R.Ptr, R.Bytes);
    else
      std::memcpy(R.Ptr, Backing.data() + R.BackingOffset, R.Bytes);
  }
  Pages = TotalPages;
  Bytes = TotalBytes;
}

void SoftDirtySubstrate::scanDirty(bool ToBacking, std::uint64_t &Pages,
                                   std::uint64_t &Bytes) {
  const std::size_t PS = pageSize();
  std::uint64_t Entries[1024];
  for (const TrackedRegion &R : Regions) {
    const std::uintptr_t Begin = reinterpret_cast<std::uintptr_t>(R.Ptr);
    const std::uintptr_t End = Begin + R.Bytes;
    std::size_t Page = 0;
    while (Page < R.NumPages) {
      const std::size_t Chunk = R.NumPages - Page < 1024 ? R.NumPages - Page
                                                         : std::size_t{1024};
      if (!readPagemap(PagemapFd, R.PageStart + Page * PS, Entries, Chunk)) {
        // Scan failure mid-stream: fall back to copying the rest of this
        // region eagerly — correctness over incrementality.
        const std::uintptr_t From = R.PageStart + Page * PS;
        const std::uintptr_t CopyBegin = From > Begin ? From : Begin;
        if (CopyBegin < End) {
          const std::size_t Off = CopyBegin - Begin;
          if (ToBacking)
            std::memcpy(Backing.data() + R.BackingOffset + Off,
                        R.Ptr + Off, End - CopyBegin);
          else
            std::memcpy(R.Ptr + Off, Backing.data() + R.BackingOffset + Off,
                        End - CopyBegin);
          Bytes += End - CopyBegin;
        }
        Pages += R.NumPages - Page;
        break;
      }
      for (std::size_t I = 0; I < Chunk; ++I) {
        if (!(Entries[I] & SoftDirtyBit))
          continue;
        const std::uintptr_t PageBegin = R.PageStart + (Page + I) * PS;
        const std::uintptr_t CopyBegin = PageBegin > Begin ? PageBegin : Begin;
        std::uintptr_t CopyEnd = PageBegin + PS;
        if (CopyEnd > End)
          CopyEnd = End;
        if (CopyBegin < CopyEnd) {
          const std::size_t Off = CopyBegin - Begin;
          if (ToBacking)
            std::memcpy(Backing.data() + R.BackingOffset + Off,
                        R.Ptr + Off, CopyEnd - CopyBegin);
          else
            std::memcpy(R.Ptr + Off, Backing.data() + R.BackingOffset + Off,
                        CopyEnd - CopyBegin);
          Bytes += CopyEnd - CopyBegin;
        }
        ++Pages;
      }
      Page += Chunk;
    }
  }
}

void SoftDirtySubstrate::takeSnapshot() {
  std::uint64_t Pages = 0, Bytes = 0;
  Backing.resize(TotalBytes);
  if (!Tracking || !armed()) {
    // First snapshot, wiped bits (another instance cleared), or no kernel
    // support: full copy, then (re-)arm.
    fullCopy(/*ToBacking=*/true, Pages, Bytes);
    Tracking = true;
  } else {
    // Workers are quiescent here, so nothing writes between the scan and
    // the re-clear below — no window where a write escapes both.
    scanDirty(/*ToBacking=*/true, Pages, Bytes);
  }
  arm();
  LastDirtyPages = Pages;
  LastBytesCopied = Bytes;
}

void SoftDirtySubstrate::restoreSnapshot() {
  CIP_CHECK(Tracking && Backing.size() == TotalBytes,
            "restore without a snapshot");
  std::uint64_t Pages = 0, Bytes = 0;
  if (!armed()) {
    fullCopy(/*ToBacking=*/false, Pages, Bytes);
  } else {
    // Pages written since the snapshot are exactly the soft-dirty ones;
    // restoring those re-establishes the snapshot image everywhere.
    scanDirty(/*ToBacking=*/false, Pages, Bytes);
  }
  // The memory now equals the snapshot; re-arm so the next snapshot copies
  // only what the re-executed epochs write.
  arm();
}

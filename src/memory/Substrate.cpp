//===- memory/Substrate.cpp - Substrate selection and factory ------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "memory/CheckpointSubstrate.h"
#include "memory/Substrates.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace cip;
using namespace cip::memory;

CheckpointSubstrate::~CheckpointSubstrate() = default;

const char *memory::substrateName(SubstrateKind K) {
  switch (K) {
  case SubstrateKind::Eager:
    return "eager";
  case SubstrateKind::PageDirty:
    return "pagedirty";
  case SubstrateKind::SoftDirty:
    return "softdirty";
  case SubstrateKind::Auto:
    return "auto";
  }
  CIP_UNREACHABLE("unknown substrate kind");
}

bool memory::parseSubstrateName(const char *Name, SubstrateKind &Out) {
  if (!Name)
    return false;
  if (std::strcmp(Name, "eager") == 0) {
    Out = SubstrateKind::Eager;
    return true;
  }
  if (std::strcmp(Name, "pagedirty") == 0) {
    Out = SubstrateKind::PageDirty;
    return true;
  }
  if (std::strcmp(Name, "softdirty") == 0) {
    Out = SubstrateKind::SoftDirty;
    return true;
  }
  if (std::strcmp(Name, "auto") == 0) {
    Out = SubstrateKind::Auto;
    return true;
  }
  return false;
}

bool memory::substrateFromEnv(SubstrateKind &Out) {
  const char *S = std::getenv("CIP_CKPT");
  if (!S || !*S)
    return false;
  if (!parseSubstrateName(S, Out)) {
    std::fprintf(stderr,
                 "error: CIP_CKPT='%s' is invalid: expected eager, pagedirty, "
                 "softdirty, or auto\n",
                 S);
    // _Exit, not exit: a registry may be constructed on a pool lane while
    // other threads are live; atexit/destructors from here trip
    // std::terminate. A config error wants immediate, clean-status death.
    std::_Exit(2);
  }
  return true;
}

SubstrateKind memory::remapForBuild(SubstrateKind K) {
#ifdef CIP_SANITIZE_BUILD
  // Sanitizer runtimes install their own SIGSEGV machinery and instrument
  // around mprotect; the fault-driven substrate is off-limits there
  // (DESIGN.md §16), so it degrades to the pagemap-based one.
  if (K == SubstrateKind::PageDirty)
    return SubstrateKind::SoftDirty;
#endif
  return K;
}

std::unique_ptr<CheckpointSubstrate> memory::createSubstrate(SubstrateKind K) {
  switch (remapForBuild(K)) {
  case SubstrateKind::Eager:
    return std::make_unique<EagerCopySubstrate>();
  case SubstrateKind::PageDirty:
    return std::make_unique<PageDirtySubstrate>();
  case SubstrateKind::SoftDirty:
    return std::make_unique<SoftDirtySubstrate>();
  case SubstrateKind::Auto:
    break;
  }
  CIP_UNREACHABLE("Auto must be resolved by the facade before construction");
}

SubstrateKind memory::activeSubstrateKind(SubstrateKind Default) {
  SubstrateKind K = Default;
  substrateFromEnv(K);
  return remapForBuild(K);
}

std::size_t memory::pageSize() {
  static const std::size_t Size = [] {
    const long N = ::sysconf(_SC_PAGESIZE);
    return N > 0 ? static_cast<std::size_t>(N) : std::size_t{4096};
  }();
  return Size;
}

//===- memory/Substrates.h - Concrete substrate classes --------*- C++ -*-===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three concrete checkpoint substrates behind createSubstrate().
/// Internal to cip_memory and its tests; consumers program against
/// memory/CheckpointSubstrate.h.
///
//===----------------------------------------------------------------------===//

#ifndef CIP_MEMORY_SUBSTRATES_H
#define CIP_MEMORY_SUBSTRATES_H

#include "memory/CheckpointSubstrate.h"

#include <atomic>
#include <cstdint>

namespace cip {
namespace memory {

/// Page-aligned span covering an arbitrary byte region, plus the offsets a
/// substrate needs to copy the region's bytes to/from a backing store. All
/// three substrates share this bookkeeping shape.
struct TrackedRegion {
  unsigned char *Ptr = nullptr;
  std::size_t Bytes = 0;
  std::uintptr_t PageStart = 0; ///< pageFloor(Ptr)
  std::uintptr_t PageEnd = 0;   ///< pageCeil(Ptr + Bytes)
  std::size_t NumPages = 0;
  std::size_t BackingOffset = 0; ///< region-granular offset into the backing
};

/// Computes the page-aligned bookkeeping for \p Regions into \p Out and
/// returns the total byte count; \p TotalPages receives the page-span sum.
std::size_t layoutRegions(const std::vector<RegionDesc> &Regions,
                          std::vector<TrackedRegion> &Out,
                          std::uint64_t &TotalPages);

/// The original behavior: every snapshot/restore memcpys every registered
/// byte. No tracking state, no platform dependencies; the baseline the
/// page-granular substrates are measured against (bench_ckpt_substrate).
class EagerCopySubstrate final : public CheckpointSubstrate {
public:
  SubstrateKind kind() const override { return SubstrateKind::Eager; }
  void setRegions(const std::vector<RegionDesc> &Regions) override;
  void takeSnapshot() override;
  void restoreSnapshot() override;
  std::uint64_t lastDirtyPages() const override { return LastDirtyPages; }
  std::uint64_t lastBytesCopied() const override { return LastBytesCopied; }
  std::uint64_t trackedPages() const override { return TotalPages; }

private:
  std::vector<TrackedRegion> Regions;
  std::vector<unsigned char> Backing;
  std::size_t TotalBytes = 0;
  std::uint64_t TotalPages = 0;
  std::uint64_t LastDirtyPages = 0;
  std::uint64_t LastBytesCopied = 0;
};

/// mprotect/SIGSEGV write tracking. After each snapshot the registered page
/// span is mapped read-only; the first write to a page faults, the handler
/// records the page in a lock-free bitmap and re-enables writes, and the
/// next snapshot/restore copies only the recorded pages. The handler-visible
/// control block (region table, bitmaps, fault-latency ring) lives in a
/// dedicated anonymous mapping so the handler can never itself write a
/// tracked — hence read-only — page. See DESIGN.md §16 for the
/// signal-handler safety rules.
class PageDirtySubstrate final : public CheckpointSubstrate {
public:
  PageDirtySubstrate() = default;
  ~PageDirtySubstrate() override;
  SubstrateKind kind() const override { return SubstrateKind::PageDirty; }
  void setRegions(const std::vector<RegionDesc> &Regions) override;
  void takeSnapshot() override;
  void restoreSnapshot() override;
  std::uint64_t lastDirtyPages() const override { return LastDirtyPages; }
  std::uint64_t lastBytesCopied() const override { return LastBytesCopied; }
  std::uint64_t trackedPages() const override { return TotalPages; }
  std::uint64_t faultCount() const override;
  void drainFaultNs(std::vector<std::uint64_t> &Out) override;

  /// Defined in PageDirty.cpp; the layout is the handler's ABI. Public so
  /// the file-scope handler and publish helpers can name it.
  struct HandlerBlock;

private:
  void teardownTracking();
  void buildHandlerBlock();
  /// Copies dirty pages between regions and backing (ToBacking selects the
  /// direction), clears their bits, re-protects them, and updates stats.
  void syncDirtyPages(bool ToBacking, std::uint64_t &Pages,
                      std::uint64_t &Bytes);

  std::vector<TrackedRegion> Regions;
  std::vector<unsigned char> Backing;
  HandlerBlock *Block = nullptr;
  std::size_t BlockBytes = 0;
  bool Tracking = false;
  std::size_t TotalBytes = 0;
  std::uint64_t TotalPages = 0;
  std::uint64_t LastDirtyPages = 0;
  std::uint64_t LastBytesCopied = 0;
};

/// Linux soft-dirty bits: snapshot scans /proc/self/pagemap (bit 55) for
/// pages written since the previous "echo 4 > /proc/self/clear_refs", so no
/// signal handler is involved — the substrate sanitizer builds use.
/// clear_refs is process-wide, so concurrent SoftDirty instances guard each
/// other with a global clear-epoch: an instance whose bits were wiped by
/// another's clear falls back to a full copy for that snapshot. Kernels
/// without CONFIG_MEM_SOFT_DIRTY are detected by a write-probe at first use;
/// unavailable means every snapshot is a full copy (correct, just eager).
class SoftDirtySubstrate final : public CheckpointSubstrate {
public:
  SoftDirtySubstrate() = default;
  ~SoftDirtySubstrate() override;
  SubstrateKind kind() const override { return SubstrateKind::SoftDirty; }
  void setRegions(const std::vector<RegionDesc> &Regions) override;
  void takeSnapshot() override;
  void restoreSnapshot() override;
  std::uint64_t lastDirtyPages() const override { return LastDirtyPages; }
  std::uint64_t lastBytesCopied() const override { return LastBytesCopied; }
  std::uint64_t trackedPages() const override { return TotalPages; }

  /// True when the kernel supports soft-dirty tracking (probe result);
  /// exposed so tests can tell incremental mode from the full-copy fallback.
  static bool kernelSupported();

private:
  void fullCopy(bool ToBacking, std::uint64_t &Pages, std::uint64_t &Bytes);
  void scanDirty(bool ToBacking, std::uint64_t &Pages, std::uint64_t &Bytes);
  /// Clears the process soft-dirty bits and records the global epoch; the
  /// next scan is valid only while no other instance has cleared since.
  void arm();
  bool armed() const;

  std::vector<TrackedRegion> Regions;
  std::vector<unsigned char> Backing;
  int PagemapFd = -1;
  bool Tracking = false;
  std::uint64_t MyClearEpoch = 0;
  std::size_t TotalBytes = 0;
  std::uint64_t TotalPages = 0;
  std::uint64_t LastDirtyPages = 0;
  std::uint64_t LastBytesCopied = 0;
};

} // namespace memory
} // namespace cip

#endif // CIP_MEMORY_SUBSTRATES_H

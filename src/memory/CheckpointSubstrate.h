//===- memory/CheckpointSubstrate.h - Versioned-memory substrates -*- C++ -*-=//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable checkpoint substrates for the SPECCROSS registry (DESIGN.md
/// §16). The paper's runtime forks the whole process and pays only COW
/// traffic for pages actually written; the original reproduction substituted
/// an eager memcpy of every registered byte, whose cost is proportional to
/// *registered* state and therefore caps speculative footprint. This layer
/// restores the paper's cost model in-process: a substrate owns the
/// snapshot/restore mechanics behind a uniform interface, and two of the
/// three implementations track writes at page granularity so checkpoints
/// copy only the *written* set:
///
///  - \c EagerCopy   memcpy of every registered byte (the old behavior).
///  - \c PageDirty   registered pages are mprotect(PROT_READ)-ed after each
///                   snapshot; a SIGSEGV handler records the faulting page
///                   in a lock-free dirty bitmap and re-enables writes, so
///                   each snapshot/restore touches only dirty pages.
///  - \c SoftDirty   Linux soft-dirty bits (/proc/self/clear_refs,
///                   /proc/self/pagemap bit 55): no signal handler, used
///                   automatically under sanitizers where the fault path is
///                   off-limits.
///
/// Substrates are selected by the strict \c CIP_CKPT environment knob
/// (eager|pagedirty|softdirty|auto — garbage exits 2) or programmatically;
/// \c Auto is resolved by the CheckpointRegistry façade from the measured
/// dirty ratio of the first checkpoint interval, never by this layer.
///
/// Layering: cip_memory depends only on cip_support. The SPECCROSS engine
/// consumes it through the CheckpointRegistry façade; nothing here may
/// reference cip::speccross, cip::policy, or cip::server (CI checks with
/// `nm`).
///
//===----------------------------------------------------------------------===//

#ifndef CIP_MEMORY_CHECKPOINT_SUBSTRATE_H
#define CIP_MEMORY_CHECKPOINT_SUBSTRATE_H

#include "support/Compiler.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cip {
namespace memory {

/// One registered mutable region. Plain span; ownership stays with the
/// workload. Regions need not be page-aligned — substrates that track pages
/// clamp every copy to the registered byte range, so sub-page and unaligned
/// regions restore bit-identically.
struct RegionDesc {
  unsigned char *Ptr = nullptr;
  std::size_t Bytes = 0;
};

/// Substrate selection. \c Auto never reaches createSubstrate(): the façade
/// resolves it to a concrete kind from the first interval's dirty ratio.
enum class SubstrateKind : std::uint32_t {
  Eager,
  PageDirty,
  SoftDirty,
  Auto,
};

/// Canonical knob spelling for \p K ("eager", "pagedirty", ...).
const char *substrateName(SubstrateKind K);

/// Parses a CIP_CKPT value. Returns true and sets \p Out on success.
bool parseSubstrateName(const char *Name, SubstrateKind &Out);

/// Strict CIP_CKPT pickup: unset/empty returns false; a valid spelling sets
/// \p Out and returns true; garbage prints the project-standard diagnostic
/// and exits 2. Read per call (not cached) so benches and the fuzzer can
/// sweep substrates within one process.
bool substrateFromEnv(SubstrateKind &Out);

/// Substrate kinds that are unsafe in this build are remapped here:
/// sanitizer builds (-DCIP_SANITIZE=...) own the SIGSEGV path, so PageDirty
/// degrades to SoftDirty. Identity otherwise.
SubstrateKind remapForBuild(SubstrateKind K);

/// One checkpoint substrate: the snapshot/restore mechanics over a region
/// set, plus per-snapshot accounting. Not thread-safe: setRegions, snapshot,
/// and restore are called from the control path while workers are quiescent.
/// PageDirty additionally fields write faults from concurrently running
/// workers; that path is lock-free and touches only the dirty bitmap.
class CheckpointSubstrate {
public:
  virtual ~CheckpointSubstrate();

  virtual SubstrateKind kind() const = 0;
  const char *name() const { return substrateName(kind()); }

  /// Replaces the tracked region set. Drops any snapshot and write-tracking
  /// state; the next takeSnapshot() is a full copy.
  virtual void setRegions(const std::vector<RegionDesc> &Regions) = 0;

  /// Captures the current contents of every region. The first call after
  /// setRegions copies everything; later calls may copy only pages written
  /// since the previous snapshot (the backing store is maintained
  /// incrementally, so it always holds a complete image).
  virtual void takeSnapshot() = 0;

  /// Restores every region to the last snapshot. Only meaningful after a
  /// takeSnapshot(); the façade guards the ordering.
  virtual void restoreSnapshot() = 0;

  /// Pages copied by the last takeSnapshot() (for Eager: every page).
  virtual std::uint64_t lastDirtyPages() const = 0;

  /// Bytes copied by the last takeSnapshot().
  virtual std::uint64_t lastBytesCopied() const = 0;

  /// Total pages spanned by the tracked regions (dirty-ratio denominator).
  virtual std::uint64_t trackedPages() const = 0;

  /// Write faults fielded since the last drain (PageDirty only; 0 for
  /// substrates without a fault path).
  virtual std::uint64_t faultCount() const { return 0; }

  /// Appends the per-fault handler latencies (ns) recorded since the last
  /// drain to \p Out and forgets them. Called from the control path at
  /// snapshot time — never from the handler.
  virtual void drainFaultNs(std::vector<std::uint64_t> &Out) { (void)Out; }
};

/// Builds a concrete substrate. \p K must not be Auto.
std::unique_ptr<CheckpointSubstrate> createSubstrate(SubstrateKind K);

/// The substrate kind the CIP_CKPT environment selects right now, after the
/// build remap, with \p Default when the knob is unset. For bench JSON rows
/// and reports; never caches.
SubstrateKind activeSubstrateKind(SubstrateKind Default = SubstrateKind::Eager);

/// Page size used by the page-tracking substrates (sysconf, cached).
std::size_t pageSize();

} // namespace memory
} // namespace cip

#endif // CIP_MEMORY_CHECKPOINT_SUBSTRATE_H

//===- memory/EagerCopy.cpp - Full-copy checkpoint substrate -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//

#include "memory/Substrates.h"

#include <cstring>

using namespace cip;
using namespace cip::memory;

std::size_t memory::layoutRegions(const std::vector<RegionDesc> &In,
                                  std::vector<TrackedRegion> &Out,
                                  std::uint64_t &TotalPages) {
  const std::size_t PS = pageSize();
  Out.clear();
  Out.reserve(In.size());
  std::size_t TotalBytes = 0;
  TotalPages = 0;
  for (const RegionDesc &R : In) {
    assert(R.Ptr && R.Bytes > 0 && "facade rejects degenerate regions");
    TrackedRegion T;
    T.Ptr = R.Ptr;
    T.Bytes = R.Bytes;
    const std::uintptr_t Begin = reinterpret_cast<std::uintptr_t>(R.Ptr);
    T.PageStart = Begin - (Begin % PS);
    const std::uintptr_t End = Begin + R.Bytes;
    T.PageEnd = End % PS ? End + PS - End % PS : End;
    T.NumPages = (T.PageEnd - T.PageStart) / PS;
    T.BackingOffset = TotalBytes;
    TotalBytes += R.Bytes;
    TotalPages += T.NumPages;
    Out.push_back(T);
  }
  return TotalBytes;
}

void EagerCopySubstrate::setRegions(const std::vector<RegionDesc> &In) {
  TotalBytes = layoutRegions(In, Regions, TotalPages);
  Backing.clear();
  LastDirtyPages = 0;
  LastBytesCopied = 0;
}

void EagerCopySubstrate::takeSnapshot() {
  Backing.resize(TotalBytes);
  for (const TrackedRegion &R : Regions)
    std::memcpy(Backing.data() + R.BackingOffset, R.Ptr, R.Bytes);
  LastDirtyPages = TotalPages;
  LastBytesCopied = TotalBytes;
}

void EagerCopySubstrate::restoreSnapshot() {
  CIP_CHECK(Backing.size() == TotalBytes, "restore without a snapshot");
  for (const TrackedRegion &R : Regions)
    std::memcpy(R.Ptr, Backing.data() + R.BackingOffset, R.Bytes);
}

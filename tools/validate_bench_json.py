#!/usr/bin/env python3
"""Validate CIP_BENCH_JSON output against the documented schema.

Usage: validate_bench_json.py <file.json> [--require-nonzero-counters]

The bench binaries emit one JSON object per line (JSON Lines); see
DESIGN.md, section "Telemetry", for the schema. Exits nonzero (with a
per-line diagnostic) on the first malformed row, on unknown counter keys,
or — with --require-nonzero-counters — when no row carries a nonzero
telemetry counter (the sign of a CIP_TELEMETRY=0 build sneaking into a
telemetry-enabled CI job).
"""

import json
import sys

COUNTER_KEYS = [
    "scheduler_busy_ns",
    "scheduler_stall_ns",
    "iterations_dispatched",
    "shadow_conflicts",
    "prologue_waits",
    "queue_full_spins",
    "queue_empty_spins",
    "worker_wait_ns",
    "tasks_executed",
    "epochs_entered",
    "throttle_spins",
    "check_requests",
    "signature_comparisons",
    "misspeculations",
    "epochs_reexecuted",
    "checkpoints_taken",
    "checkpoint_bytes",
    "checkpoint_ns",
    "recovery_ns",
    "barrier_wait_ns",
]

SCHEMES = {"sequential", "barrier", "domore", "speccross"}
SCALES = {"test", "train", "ref"}


def fail(line_no, msg):
    print(f"error: line {line_no}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_row(line_no, row):
    if not isinstance(row, dict):
        fail(line_no, "row is not a JSON object")
    for key, typ in [
        ("workload", str),
        ("scheme", str),
        ("threads", int),
        ("scale", str),
        ("reps", int),
        ("seconds", (int, float)),
        ("speedup", (int, float)),
        ("counters", dict),
    ]:
        if key not in row:
            fail(line_no, f"missing key '{key}'")
        if not isinstance(row[key], typ):
            fail(line_no, f"key '{key}' has type {type(row[key]).__name__}")
    if row["scheme"] not in SCHEMES:
        fail(line_no, f"unknown scheme '{row['scheme']}'")
    if row["scale"] not in SCALES:
        fail(line_no, f"unknown scale '{row['scale']}'")
    if row["threads"] < 1 or row["reps"] < 1:
        fail(line_no, "threads and reps must be positive")
    if row["seconds"] < 0:
        fail(line_no, "seconds must be non-negative")
    counters = row["counters"]
    for key in counters:
        if key not in COUNTER_KEYS:
            fail(line_no, f"unknown counter '{key}'")
    for key in COUNTER_KEYS:
        if key not in counters:
            fail(line_no, f"missing counter '{key}'")
        value = counters[key]
        if not isinstance(value, int) or value < 0:
            fail(line_no, f"counter '{key}' must be a non-negative integer")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_nonzero = "--require-nonzero-counters" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    rows = 0
    nonzero = 0
    with open(args[0], encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                fail(line_no, f"invalid JSON: {err}")
            validate_row(line_no, row)
            rows += 1
            if any(row["counters"][k] for k in COUNTER_KEYS):
                nonzero += 1

    if rows == 0:
        print("error: no rows found", file=sys.stderr)
        return 1
    if require_nonzero and nonzero == 0:
        print("error: no row carries a nonzero telemetry counter",
              file=sys.stderr)
        return 1
    print(f"ok: {rows} rows valid ({nonzero} with nonzero counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

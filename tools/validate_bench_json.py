#!/usr/bin/env python3
"""Validate CIP_BENCH_JSON output and CIP_REPORT run reports.

Usage: validate_bench_json.py <file.json> [--require-nonzero-counters]
       validate_bench_json.py --report <report.json> [more.json ...]
       validate_bench_json.py --self-test

Without --report, the input is bench output: one JSON object per line
(JSON Lines) as emitted via CIP_BENCH_JSON; see DESIGN.md, section
"Telemetry", for the schema. Exits nonzero (with a per-line diagnostic) on
the first malformed row, on unknown counter keys, or — with
--require-nonzero-counters — when no row carries a nonzero telemetry
counter (the sign of a CIP_TELEMETRY=0 build sneaking into a
telemetry-enabled CI job).

With --report, each input is one <prefix>.<region>.<seq>.report.json file
written by RegionTelemetry::finish() under CIP_REPORT (schema in DESIGN.md,
section 8). Checks the required keys, that every histogram's bucket edges
strictly increase and bucket counts sum to the histogram count, that the
heatmap's pair counts sum to total_conflicts, and every abort record's
forensics fields.

Both modes validate the adaptive policy engine's decision/switch logs
(DESIGN.md §11): bench rows whose scheme is adaptive-* must carry
policy_decisions and switch_events arrays (optional elsewhere), every run
report carries both, and the number of decisions marked switched must equal
the number of switch events. Decision/switch records may additionally name
"sequential" — the profiling mode's calibration probe (DESIGN.md §13).

Both modes also validate the plan provenance object (DESIGN.md §13):
adaptive-* bench rows and every run report carry "plan", whose
loaded/profiled/source fields must be mutually consistent (a cold run is
{loaded:false, profiled:false, source:"none"}).

Bench rows may additionally carry the raw-speed payloads (DESIGN.md §14):
"shadow_shards" on domore/domore-dup rows (shard count, scheduler-team
size, and the per-shard conflict split summing to the region's sync
conditions) and "batch_check" on speccross rows (batched-kernel accounting
including the checker-lane count plus the batch_width histogram summary).
Both are validated when present and rejected on any other scheme.

Checkpoint-substrate schema (DESIGN.md §16): every bench row carries
"ckpt_substrate" (the substrate CIP_CKPT selected at record time), the
counter set includes dirty_pages / ckpt_bytes_copied, the histogram set
includes ckpt_fault_ns, and the plan object carries the plan-v4
"ckpt_substrate" hint ("" = no hint distilled).

With --self-test, the validator feeds itself deliberately malformed
payloads (a scheduler team without a sharded shadow, a zero checker-lane
count, a plan missing sched_threads, ...) and fails if any is accepted —
the schema checks above are themselves under test.
"""

import json
import sys

COUNTER_KEYS = [
    "scheduler_busy_ns",
    "scheduler_stall_ns",
    "iterations_dispatched",
    "shadow_conflicts",
    "prologue_waits",
    "queue_full_spins",
    "queue_empty_spins",
    "worker_wait_ns",
    "tasks_executed",
    "epochs_entered",
    "throttle_spins",
    "check_requests",
    "signature_comparisons",
    "misspeculations",
    "epochs_reexecuted",
    "checkpoints_taken",
    "checkpoint_bytes",
    "checkpoint_ns",
    "recovery_ns",
    "barrier_wait_ns",
    "server_admitted",
    "server_rejected",
    "server_degraded",
    "server_queue_wait_ns",
    "sched_team_conflicts",
    "sched_team_idle_ns",
    "dirty_pages",
    "ckpt_bytes_copied",
]

HIST_KEYS = [
    "sched_stall_ns",
    "worker_wait_ns",
    "queue_full_ns",
    "epoch_ns",
    "check_ns",
    "barrier_wait_ns",
    "dispatch_batch",
    "server_queue_ns",
    "batch_width",
    "ckpt_fault_ns",
]

HIST_SUMMARY_KEYS = ["count", "sum_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns"]

ABORT_CAUSES = {"signature_overlap", "injected", "timeout"}

SCHEMES = {"sequential", "barrier", "domore", "domore-dup", "speccross",
           "adaptive-threshold", "adaptive-bandit",
           "adaptive-profile", "adaptive-cold", "adaptive-planned",
           "server-serialized", "server-oversub", "server-gated",
           "ckpt-direct", "speccross-ckpt"}
SCALES = {"test", "train", "ref"}

# Checkpoint substrates (DESIGN.md §16). Every row names the substrate
# CIP_CKPT selects at record time; "auto" appears only when the knob pins
# auto and no registry has resolved it yet. The plan hint (plan v4) may be
# "" — profiling runs that never measured SPECCROSS emit no hint.
CKPT_SUBSTRATES = {"eager", "pagedirty", "softdirty", "auto"}

# policy::techniqueName values — what decision/switch records may name.
TECHNIQUES = {"barrier", "domore", "domore-dup", "speccross"}

# Decision/switch records may additionally name the profiling mode's
# sequential calibration probe (DESIGN.md §13).
DECISION_TECHNIQUES = TECHNIQUES | {"sequential"}

# plan.source values and which loaded/profiled combination each implies.
PLAN_SOURCES = {
    "none": (False, False),
    "file": (True, False),
    "dir": (True, False),
    "profile": (False, True),
}


def fail(where, msg):
    print(f"error: {where}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_uint(where, obj, key):
    if key not in obj:
        fail(where, f"missing key '{key}'")
    value = obj[key]
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(where, f"key '{key}' must be a non-negative integer")
    return value


def validate_counters(where, counters):
    if not isinstance(counters, dict):
        fail(where, "counters is not an object")
    for key in counters:
        if key not in COUNTER_KEYS:
            fail(where, f"unknown counter '{key}'")
    for key in COUNTER_KEYS:
        check_uint(where, counters, key)


def validate_hist_summary(where, hist):
    if not isinstance(hist, dict):
        fail(where, "histogram is not an object")
    for key in HIST_SUMMARY_KEYS:
        check_uint(where, hist, key)


def validate_histogram(where, hist):
    """Full per-report histogram: summary plus the occupied buckets."""
    validate_hist_summary(where, hist)
    if "buckets" not in hist or not isinstance(hist["buckets"], list):
        fail(where, "missing bucket array")
    previous_edge = -1
    total = 0
    for index, bucket in enumerate(hist["buckets"]):
        bwhere = f"{where} bucket {index}"
        if not isinstance(bucket, dict):
            fail(bwhere, "bucket is not an object")
        edge = check_uint(bwhere, bucket, "le_ns")
        count = check_uint(bwhere, bucket, "count")
        if edge <= previous_edge:
            fail(bwhere, f"bucket edge {edge} does not increase "
                         f"(previous {previous_edge})")
        if count == 0:
            fail(bwhere, "empty bucket emitted")
        previous_edge = edge
        total += count
    if total != hist["count"]:
        fail(where, f"bucket counts sum to {total}, "
                    f"histogram count is {hist['count']}")
    if hist["buckets"] and hist["buckets"][-1]["le_ns"] < hist["max_ns"]:
        # The last occupied bucket's edge is capped at the observed max.
        fail(where, f"last bucket edge {hist['buckets'][-1]['le_ns']} "
                    f"below max_ns {hist['max_ns']}")


def validate_heatmap(where, heatmap, lanes):
    if not isinstance(heatmap, dict):
        fail(where, "heatmap is not an object")
    total = check_uint(where, heatmap, "total_conflicts")
    if "pairs" not in heatmap or not isinstance(heatmap["pairs"], list):
        fail(where, "missing heatmap pair array")
    pair_sum = 0
    for index, pair in enumerate(heatmap["pairs"]):
        pwhere = f"{where} pair {index}"
        dep = check_uint(pwhere, pair, "dep_tid")
        tid = check_uint(pwhere, pair, "tid")
        count = check_uint(pwhere, pair, "count")
        if dep >= lanes or tid >= lanes:
            fail(pwhere, f"tid ({dep} -> {tid}) out of range for "
                         f"{lanes} lanes")
        if count == 0:
            fail(pwhere, "zero-count pair emitted")
        pair_sum += count
    if pair_sum != total:
        fail(where, f"pair counts sum to {pair_sum}, "
                    f"total_conflicts is {total}")
    if "top_addr_buckets" not in heatmap or \
            not isinstance(heatmap["top_addr_buckets"], list):
        fail(where, "missing top_addr_buckets array")
    for index, bucket in enumerate(heatmap["top_addr_buckets"]):
        bwhere = f"{where} addr bucket {index}"
        check_uint(bwhere, bucket, "bucket")
        check_uint(bwhere, bucket, "count")
        check_uint(bwhere, bucket, "example_addr")


def validate_abort(where, abort):
    if not isinstance(abort, dict):
        fail(where, "abort record is not an object")
    if abort.get("cause") not in ABORT_CAUSES:
        fail(where, f"unknown abort cause '{abort.get('cause')}'")
    for key in ["earlier_epoch", "earlier_tid", "earlier_task",
                "later_epoch", "later_tid", "later_task",
                "signature_bucket", "tasks_unwound", "ns_since_checkpoint",
                "round_first_epoch", "round_end_epoch"]:
        check_uint(where, abort, key)
    if not isinstance(abort.get("exact_confirmed"), bool):
        fail(where, "exact_confirmed must be a boolean")
    if not isinstance(abort.get("scheme"), str):
        fail(where, "scheme must be a string")
    if abort["round_first_epoch"] > abort["round_end_epoch"]:
        fail(where, "round_first_epoch beyond round_end_epoch")


def check_number(where, obj, key):
    if key not in obj:
        fail(where, f"missing key '{key}'")
    value = obj[key]
    if not isinstance(value, (int, float)) or isinstance(value, bool) or \
            value < 0:
        fail(where, f"key '{key}' must be a non-negative number")
    return value


def check_bool(where, obj, key):
    if not isinstance(obj.get(key), bool):
        fail(where, f"key '{key}' must be a boolean")
    return obj[key]


def validate_policy_decision(where, dec):
    if not isinstance(dec, dict):
        fail(where, "policy decision is not an object")
    for key in ["window", "first_epoch", "num_epochs", "decision_ns"]:
        check_uint(where, dec, key)
    if dec.get("technique") not in DECISION_TECHNIQUES:
        fail(where, f"unknown technique '{dec.get('technique')}'")
    if not isinstance(dec.get("reason"), str) or not dec["reason"]:
        fail(where, "missing decision reason")
    check_bool(where, dec, "explore")
    check_bool(where, dec, "switched")
    for key in ["window_seconds", "abort_rate", "conflict_density"]:
        check_number(where, dec, key)


def validate_switch_event(where, event):
    if not isinstance(event, dict):
        fail(where, "switch event is not an object")
    check_uint(where, event, "window")
    for key in ["from", "to"]:
        if event.get(key) not in DECISION_TECHNIQUES:
            fail(where, f"unknown technique '{event.get(key)}' in '{key}'")
    if event["from"] == event["to"]:
        fail(where, f"switch event from '{event['from']}' to itself")
    if not isinstance(event.get("reason"), str) or not event["reason"]:
        fail(where, "missing switch reason")
    check_bool(where, event, "warm_carry")
    check_uint(where, event, "teardown_ns")


def validate_policy_log(where, obj, required):
    """The policy engine's decision/switch arrays (bench rows for the
    adaptive schemes, every run report). The two arrays must agree: each
    decision marked switched corresponds to one switch event."""
    present = "policy_decisions" in obj or "switch_events" in obj
    if not present and not required:
        return
    for key in ["policy_decisions", "switch_events"]:
        if key not in obj or not isinstance(obj[key], list):
            fail(where, f"missing '{key}' array")
    for index, dec in enumerate(obj["policy_decisions"]):
        validate_policy_decision(f"{where} policy decision {index}", dec)
    for index, event in enumerate(obj["switch_events"]):
        validate_switch_event(f"{where} switch event {index}", event)
    switched = sum(1 for d in obj["policy_decisions"] if d["switched"])
    if switched != len(obj["switch_events"]):
        fail(where, f"{switched} decisions marked switched but "
                    f"{len(obj['switch_events'])} switch events")


def validate_plan(where, obj, required):
    """The plan provenance object (DESIGN.md §13): who warm-started this
    run, from where, and with what predictions. Cold runs carry the
    defaults; the loaded/profiled flags must agree with source."""
    if "plan" not in obj:
        if required:
            fail(where, "missing 'plan' object")
        return
    plan = obj["plan"]
    if not isinstance(plan, dict):
        fail(where, "plan is not an object")
    loaded = check_bool(where, plan, "loaded")
    profiled = check_bool(where, plan, "profiled")
    if plan.get("source") not in PLAN_SOURCES:
        fail(where, f"unknown plan source '{plan.get('source')}'")
    if PLAN_SOURCES[plan["source"]] != (loaded, profiled):
        fail(where, f"plan source '{plan['source']}' inconsistent with "
                    f"loaded={loaded} profiled={profiled}")
    for key in ["path", "initial"]:
        if not isinstance(plan.get(key), str):
            fail(where, f"plan key '{key}' must be a string")
    if (loaded or profiled) and plan["initial"] not in TECHNIQUES:
        fail(where, f"unknown plan initial technique '{plan['initial']}'")
    for key in ["predicted_sec_per_epoch", "sequential_sec_per_epoch"]:
        check_number(where, plan, key)
    for key in ["spec_distance", "max_batch_hint", "shadow_shards",
                "sched_threads", "min_dependence_distance"]:
        check_uint(where, plan, key)
    # Plan v4: the checkpoint-substrate hint ("" = the profiling run never
    # measured SPECCROSS, so no hint was distilled).
    if "ckpt_substrate" not in plan or \
            not isinstance(plan["ckpt_substrate"], str):
        fail(where, "plan key 'ckpt_substrate' must be a string")
    if plan["ckpt_substrate"] and \
            plan["ckpt_substrate"] not in CKPT_SUBSTRATES:
        fail(where, f"unknown plan ckpt_substrate "
                    f"'{plan['ckpt_substrate']}'")


def validate_report(path):
    with open(path, encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as err:
            fail(path, f"invalid JSON: {err}")
    if not isinstance(report, dict):
        fail(path, "report is not a JSON object")
    if report.get("schema_version") != 1:
        fail(path, f"unknown schema_version {report.get('schema_version')}")
    if not isinstance(report.get("region"), str) or not report["region"]:
        fail(path, "missing region name")
    check_uint(path, report, "seq")
    lanes = check_uint(path, report, "lanes")
    names = report.get("lane_names")
    if not isinstance(names, list) or len(names) != lanes or \
            not all(isinstance(n, str) for n in names):
        fail(path, f"lane_names must be a list of {lanes} strings")
    validate_counters(path, report.get("counters"))
    hists = report.get("histograms")
    if not isinstance(hists, dict):
        fail(path, "histograms is not an object")
    for key in hists:
        if key not in HIST_KEYS:
            fail(path, f"unknown histogram '{key}'")
    for key in HIST_KEYS:
        if key not in hists:
            fail(path, f"missing histogram '{key}'")
        validate_histogram(f"{path} histogram {key}", hists[key])
    validate_heatmap(f"{path} heatmap", report.get("heatmap", None), lanes)
    if "aborts" not in report or not isinstance(report["aborts"], list):
        fail(path, "missing abort array")
    for index, abort in enumerate(report["aborts"]):
        validate_abort(f"{path} abort {index}", abort)
    validate_policy_log(path, report, required=True)
    validate_plan(path, report, required=True)
    return len(report["aborts"]), report["heatmap"]["total_conflicts"]


def validate_server(where, server):
    """The region-server traffic payload carried by server-* bench rows:
    offered vs achieved throughput plus the request-latency percentiles."""
    if not isinstance(server, dict):
        fail(where, "server is not an object")
    for key in ["offered_rps", "throughput_rps",
                "p50_ms", "p95_ms", "p99_ms"]:
        check_number(where, server, key)
    completed = check_uint(where, server, "completed")
    rejected = check_uint(where, server, "rejected")
    degraded_seq = check_uint(where, server, "degraded_sequential")
    degraded_narrow = check_uint(where, server, "degraded_narrow")
    submitted = check_uint(where, server, "submitted")
    if completed + rejected != submitted:
        fail(where, f"completed {completed} + rejected {rejected} "
                    f"!= submitted {submitted}")
    if degraded_seq + degraded_narrow > completed:
        fail(where, "more degraded requests than completed requests")
    if server["p50_ms"] > server["p95_ms"] or \
            server["p95_ms"] > server["p99_ms"]:
        fail(where, "latency percentiles must be non-decreasing")


def validate_shadow_shards(where, shards):
    """The sharded shadow-memory payload DOMORE rows may carry (DESIGN.md
    §14/§15): the shard count, the scheduler-team size the detect stage ran
    with, and the per-shard conflict split, which must sum to the region's
    sync conditions. Populated by the runtime itself, so it is exact in
    CIP_TELEMETRY=0 builds too."""
    if not isinstance(shards, dict):
        fail(where, "shadow_shards is not an object")
    count = check_uint(where, shards, "shards")
    if count < 1:
        fail(where, "shard count must be at least 1")
    team = check_uint(where, shards, "sched_threads")
    if team < 1:
        fail(where, "sched_threads must be at least 1")
    if count <= 1 and team > 1:
        fail(where, f"sched_threads {team} without a sharded shadow "
                    f"({count} shards)")
    syncs = check_uint(where, shards, "sync_conditions")
    if "conflicts" not in shards or not isinstance(shards["conflicts"], list):
        fail(where, "missing per-shard conflicts array")
    if len(shards["conflicts"]) != count:
        fail(where, f"{len(shards['conflicts'])} conflict entries for "
                    f"{count} shards")
    total = 0
    for index, value in enumerate(shards["conflicts"]):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(where, f"conflicts[{index}] must be a non-negative integer")
        total += value
    if total != syncs:
        fail(where, f"per-shard conflicts sum to {total}, "
                    f"sync_conditions is {syncs}")


def validate_batch_check(where, batch):
    """The batched signature-checking payload SPECCROSS rows may carry
    (DESIGN.md §14). The counts come from the runtime; the batch_width
    histogram is telemetry, so its count is either 0 (CIP_TELEMETRY=0) or
    exactly one entry per batch span scanned."""
    if not isinstance(batch, dict):
        fail(where, "batch_check is not an object")
    enabled = check_bool(where, batch, "enabled")
    if check_uint(where, batch, "check_lanes") < 1:
        fail(where, "check_lanes must be at least 1")
    checks = check_uint(where, batch, "batch_checks")
    comparisons = check_uint(where, batch, "signature_comparisons")
    if not enabled and checks != 0:
        fail(where, f"{checks} batch_checks recorded with batching disabled")
    if checks > comparisons:
        fail(where, f"batch_checks {checks} exceeds signature_comparisons "
                    f"{comparisons}")
    if "batch_width" not in batch:
        fail(where, "missing batch_width histogram summary")
    validate_hist_summary(f"{where} batch_width", batch["batch_width"])
    width_count = batch["batch_width"]["count"]
    if width_count not in (0, checks):
        fail(where, f"batch_width count {width_count} matches neither 0 "
                    f"(telemetry off) nor batch_checks {checks}")


def validate_row_ckpt_substrate(where, row):
    """Every bench row names the checkpoint substrate active at record time
    (DESIGN.md §16); rows predating plan v4 do not exist in current output,
    so the key is required."""
    if "ckpt_substrate" not in row or \
            not isinstance(row["ckpt_substrate"], str):
        fail(where, "key 'ckpt_substrate' must be a string")
    if row["ckpt_substrate"] not in CKPT_SUBSTRATES:
        fail(where, f"unknown ckpt_substrate '{row['ckpt_substrate']}'")


def validate_row(line_no, row):
    where = f"line {line_no}"
    if not isinstance(row, dict):
        fail(where, "row is not a JSON object")
    for key, typ in [
        ("workload", str),
        ("scheme", str),
        ("threads", int),
        ("scale", str),
        ("reps", int),
        ("seconds", (int, float)),
        ("speedup", (int, float)),
        ("counters", dict),
        ("wait_hist", dict),
        ("dispatch_batch", dict),
    ]:
        if key not in row:
            fail(where, f"missing key '{key}'")
        if not isinstance(row[key], typ):
            fail(where, f"key '{key}' has type {type(row[key]).__name__}")
    if row["scheme"] not in SCHEMES:
        fail(where, f"unknown scheme '{row['scheme']}'")
    if row["scale"] not in SCALES:
        fail(where, f"unknown scale '{row['scale']}'")
    validate_row_ckpt_substrate(where, row)
    if row["threads"] < 1 or row["reps"] < 1:
        fail(where, "threads and reps must be positive")
    if row["seconds"] < 0:
        fail(where, "seconds must be non-negative")
    validate_counters(where, row["counters"])
    validate_hist_summary(f"{where} wait_hist", row["wait_hist"])
    # dispatch_batch reuses the summary shape; its values are batch sizes
    # (iterations per DOMORE WorkRange message), not nanoseconds.
    validate_hist_summary(f"{where} dispatch_batch", row["dispatch_batch"])
    # Adaptive rows carry the policy engine's decision and switch logs;
    # other schemes may omit them.
    validate_policy_log(where, row,
                        required=row["scheme"].startswith("adaptive-"))
    # Adaptive rows carry the plan provenance object (DESIGN.md §13).
    validate_plan(where, row, required=row["scheme"].startswith("adaptive-"))
    # Server traffic rows carry the throughput/latency payload.
    if row["scheme"].startswith("server-"):
        if "server" not in row:
            fail(where, "server-* row missing 'server' object")
        validate_server(f"{where} server", row["server"])
    elif "server" in row:
        fail(where, f"scheme '{row['scheme']}' must not carry 'server'")
    # The raw-speed payloads (DESIGN.md §14): DOMORE rows may carry the
    # sharded-shadow accounting, SPECCROSS rows the batched-checker
    # accounting; neither belongs on any other scheme.
    if "shadow_shards" in row:
        if row["scheme"] not in ("domore", "domore-dup"):
            fail(where, f"scheme '{row['scheme']}' must not carry "
                        f"'shadow_shards'")
        validate_shadow_shards(f"{where} shadow_shards", row["shadow_shards"])
    if "batch_check" in row:
        if row["scheme"] != "speccross":
            fail(where, f"scheme '{row['scheme']}' must not carry "
                        f"'batch_check'")
        validate_batch_check(f"{where} batch_check", row["batch_check"])


def self_test():
    """Negative tests for the schema checks: every malformed payload below
    must be rejected (fail() exits nonzero), and the matching well-formed
    payload must pass. Run in CI so a loosened check cannot land silently."""
    import contextlib
    import io

    def good_shards():
        return {"shards": 8, "sched_threads": 4, "sync_conditions": 3,
                "conflicts": [3, 0, 0, 0, 0, 0, 0, 0]}

    def good_batch():
        return {"enabled": True, "check_lanes": 2, "batch_checks": 4,
                "signature_comparisons": 16,
                "batch_width": {"count": 4, "sum_ns": 16, "max_ns": 4,
                                "p50_ns": 4, "p90_ns": 4, "p99_ns": 4}}

    def good_plan():
        return {"loaded": True, "profiled": False, "source": "file",
                "path": "plans/relax.plan.json", "initial": "domore",
                "predicted_sec_per_epoch": 0.5,
                "sequential_sec_per_epoch": 1.0, "spec_distance": 2,
                "max_batch_hint": 16, "shadow_shards": 8,
                "sched_threads": 4, "min_dependence_distance": 3,
                "ckpt_substrate": "pagedirty"}

    def good_counters():
        return {key: 0 for key in COUNTER_KEYS}

    def drop(obj, key):
        del obj[key]
        return obj

    def put(obj, key, value):
        obj[key] = value
        return obj

    positive = [
        ("well-formed shadow_shards",
         lambda: validate_shadow_shards("t", good_shards())),
        ("serial team on an unsharded shadow",
         lambda: validate_shadow_shards(
             "t", {"shards": 1, "sched_threads": 1, "sync_conditions": 2,
                   "conflicts": [2]})),
        ("well-formed batch_check",
         lambda: validate_batch_check("t", good_batch())),
        ("well-formed plan",
         lambda: validate_plan("t", {"plan": good_plan()}, required=True)),
        ("plan without a checkpoint hint",
         lambda: validate_plan("t", {"plan": put(good_plan(),
                                                 "ckpt_substrate", "")},
                               required=True)),
        ("well-formed row substrate",
         lambda: validate_row_ckpt_substrate(
             "t", {"ckpt_substrate": "softdirty"})),
        ("full counter set with dirty-page accounting",
         lambda: validate_counters("t", good_counters())),
    ]
    negative = [
        ("shadow_shards missing sched_threads",
         lambda: validate_shadow_shards("t", drop(good_shards(),
                                                  "sched_threads"))),
        ("sched_threads of zero",
         lambda: validate_shadow_shards("t", put(good_shards(),
                                                 "sched_threads", 0))),
        ("scheduler team without a sharded shadow",
         lambda: validate_shadow_shards(
             "t", {"shards": 1, "sched_threads": 4, "sync_conditions": 2,
                   "conflicts": [2]})),
        ("conflict split not summing to sync_conditions",
         lambda: validate_shadow_shards("t", put(good_shards(),
                                                 "sync_conditions", 99))),
        ("batch_check missing check_lanes",
         lambda: validate_batch_check("t", drop(good_batch(),
                                                "check_lanes"))),
        ("check_lanes of zero",
         lambda: validate_batch_check("t", put(good_batch(),
                                               "check_lanes", 0))),
        ("plan missing sched_threads",
         lambda: validate_plan("t", {"plan": drop(good_plan(),
                                                  "sched_threads")},
                               required=True)),
        ("negative plan sched_threads",
         lambda: validate_plan("t", {"plan": put(good_plan(),
                                                 "sched_threads", -1)},
                               required=True)),
        ("plan missing ckpt_substrate",
         lambda: validate_plan("t", {"plan": drop(good_plan(),
                                                  "ckpt_substrate")},
                               required=True)),
        ("plan with a misspelled substrate",
         lambda: validate_plan("t", {"plan": put(good_plan(),
                                                 "ckpt_substrate",
                                                 "page-dirty")},
                               required=True)),
        ("row missing ckpt_substrate",
         lambda: validate_row_ckpt_substrate("t", {})),
        ("row with an unknown substrate",
         lambda: validate_row_ckpt_substrate(
             "t", {"ckpt_substrate": "fork"})),
        ("counters missing dirty_pages",
         lambda: validate_counters("t", drop(good_counters(),
                                             "dirty_pages"))),
        ("counters missing ckpt_bytes_copied",
         lambda: validate_counters("t", drop(good_counters(),
                                             "ckpt_bytes_copied"))),
    ]

    failures = 0
    for name, check in positive:
        try:
            with contextlib.redirect_stderr(io.StringIO()):
                check()
        except SystemExit:
            print(f"self-test: FAIL: rejected valid payload: {name}",
                  file=sys.stderr)
            failures += 1
    for name, check in negative:
        try:
            with contextlib.redirect_stderr(io.StringIO()):
                check()
        except SystemExit as err:
            if err.code:
                continue
        print(f"self-test: FAIL: accepted malformed payload: {name}",
              file=sys.stderr)
        failures += 1
    if failures:
        return 1
    print(f"ok: self-test passed ({len(positive)} positive, "
          f"{len(negative)} negative cases)")
    return 0


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_nonzero = "--require-nonzero-counters" in sys.argv[1:]
    report_mode = "--report" in sys.argv[1:]

    if "--self-test" in sys.argv[1:]:
        return self_test()

    if report_mode:
        if not args:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        aborts = 0
        conflicts = 0
        for path in args:
            file_aborts, file_conflicts = validate_report(path)
            aborts += file_aborts
            conflicts += file_conflicts
        print(f"ok: {len(args)} reports valid "
              f"({aborts} aborts, {conflicts} conflicts)")
        return 0

    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    rows = 0
    nonzero = 0
    with open(args[0], encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"line {line_no}", f"invalid JSON: {err}")
            validate_row(line_no, row)
            rows += 1
            if any(row["counters"][k] for k in COUNTER_KEYS):
                nonzero += 1

    if rows == 0:
        print("error: no rows found", file=sys.stderr)
        return 1
    if require_nonzero and nonzero == 0:
        print("error: no row carries a nonzero telemetry counter",
              file=sys.stderr)
        return 1
    print(f"ok: {rows} rows valid ({nonzero} with nonzero counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

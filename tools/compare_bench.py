#!/usr/bin/env python3
"""Compare a CIP_BENCH_JSON run against a committed baseline.

Usage: compare_bench.py <baseline.json> <current.json>
           [--threshold 1.4] [--fail] [--min-speedup X]

Both inputs are JSON Lines as emitted via CIP_BENCH_JSON. Rows are matched
by (workload, scheme, threads, scale); when either side has several rows
for a key (reruns), the fastest is used, mirroring the bench binaries'
min-of-reps reporting. A row slows down when

    current.seconds > threshold * baseline.seconds

with a default threshold of 1.4: bench timings on shared CI machines are
noisy, so this gate is meant to catch step-function regressions (a lost
fast path, an accidental O(n^2)), not single-digit-percent drift — the
committed baseline exists to make the *trajectory* visible, not to freeze
it. Rows present in only one input (a bench lane that silently stopped
running, or new rows missing from the committed baseline) are listed as
explicit warning: lines and counted in the summary, but never fatal.

Exits 0 regardless of slowdowns unless --fail is given (CI runs it as a
non-fatal report step; --fail is for local bisection).

The final summary line also reports the per-key speedup of current over
baseline (baseline.seconds / current.seconds) as geomean/best/worst across
all matched keys. With --min-speedup X the script exits 1 when the geomean
falls below X — use it to assert an optimization actually landed
(e.g. --min-speedup 1.05), the complement of the slowdown gate.
"""

import json
import math
import sys


def load_rows(path):
    """Fastest seconds and speedup per (workload, scheme, threads, scale).
    Server traffic rows additionally carry their 'server' payload so the
    summary can report throughput/latency movement, not just makespan."""
    rows = {}
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"error: {path}:{line_no}: invalid JSON: {err}",
                      file=sys.stderr)
                sys.exit(2)
            try:
                key = (row["workload"], row["scheme"], row["threads"],
                       row["scale"])
                seconds = float(row["seconds"])
                speedup = float(row.get("speedup", 0.0))
            except (KeyError, TypeError, ValueError) as err:
                print(f"error: {path}:{line_no}: malformed row: {err}",
                      file=sys.stderr)
                sys.exit(2)
            if key not in rows or seconds < rows[key][0]:
                rows[key] = (seconds, speedup, row.get("server"))
    if not rows:
        print(f"error: {path}: no rows", file=sys.stderr)
        sys.exit(2)
    return rows


def key_name(key):
    workload, scheme, threads, scale = key
    return f"{workload}/{scheme} t={threads} ({scale})"


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    fail_on_slowdown = "--fail" in sys.argv[1:]
    threshold = 1.4
    min_speedup = None
    argv = sys.argv[1:]
    if "--threshold" in argv:
        at = argv.index("--threshold")
        if at + 1 >= len(argv):
            print("error: --threshold needs a value", file=sys.stderr)
            return 2
        threshold = float(argv[at + 1])
        args = [a for a in args if a != argv[at + 1]]
    if "--min-speedup" in argv:
        at = argv.index("--min-speedup")
        if at + 1 >= len(argv):
            print("error: --min-speedup needs a value", file=sys.stderr)
            return 2
        min_speedup = float(argv[at + 1])
        args = [a for a in args if a != argv[at + 1]]
    if len(args) != 2 or threshold <= 0 or \
            (min_speedup is not None and min_speedup <= 0):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load_rows(args[0])
    current = load_rows(args[1])

    slowdowns = []
    improvements = []
    speedups = []
    only_baseline = sorted(k for k in baseline if k not in current)
    only_current = sorted(k for k in current if k not in baseline)
    for key in only_baseline:
        print(f"warning: {key_name(key)} only in baseline — lane missing "
              f"from current run")
    for key in only_current:
        print(f"warning: {key_name(key)} only in current — not in the "
              f"committed baseline (regenerate it?)")
    for key in sorted(baseline):
        if key not in current:
            continue
        base_s, _, base_srv = baseline[key]
        cur_s, _, cur_srv = current[key]
        if base_srv and cur_srv:
            # Server traffic rows: what matters is achieved throughput and
            # tail latency, not the makespan the slowdown gate compares.
            tput = (cur_srv["throughput_rps"] / base_srv["throughput_rps"]
                    if base_srv["throughput_rps"] > 0 else 0.0)
            print(f"server {key_name(key)}: throughput "
                  f"{base_srv['throughput_rps']:.1f} -> "
                  f"{cur_srv['throughput_rps']:.1f} req/s ({tput:.2f}x), "
                  f"p99 {base_srv['p99_ms']:.2f}ms -> "
                  f"{cur_srv['p99_ms']:.2f}ms")
        if base_s <= 0 or cur_s <= 0:
            continue
        ratio = cur_s / base_s
        speedups.append((base_s / cur_s, key))
        line = (f"{key_name(key)}: {base_s * 1e3:.3f}ms -> "
                f"{cur_s * 1e3:.3f}ms ({ratio:.2f}x)")
        if ratio > threshold:
            slowdowns.append(line)
        elif ratio < 1.0 / threshold:
            improvements.append(line)
    for line in improvements:
        print(f"faster: {line}")
    for line in slowdowns:
        print(f"SLOWDOWN: {line}")
    matched = sum(1 for k in baseline if k in current)
    print(f"compared {matched} keys against threshold {threshold:.2f}x: "
          f"{len(slowdowns)} slowdowns, {len(improvements)} improvements, "
          f"{len(only_baseline) + len(only_current)} unmatched rows "
          f"({len(only_baseline)} baseline-only, "
          f"{len(only_current)} current-only)")
    geomean = None
    if speedups:
        geomean = math.exp(sum(math.log(s) for s, _ in speedups)
                           / len(speedups))
        best = max(speedups)
        worst = min(speedups)
        print(f"speedup vs baseline: geomean {geomean:.3f}x, "
              f"best {best[0]:.3f}x ({key_name(best[1])}), "
              f"worst {worst[0]:.3f}x ({key_name(worst[1])})")
    if min_speedup is not None and (geomean is None or geomean < min_speedup):
        have = f"{geomean:.3f}x" if geomean is not None else "none"
        print(f"error: geomean speedup {have} below required "
              f"{min_speedup:.3f}x", file=sys.stderr)
        return 1
    if slowdowns and fail_on_slowdown:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

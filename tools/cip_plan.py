#!/usr/bin/env python3
"""Render or validate CIP region plan files (DESIGN.md section 13).

Usage: cip_plan.py [--validate] <plan.json | plan-dir> ...

A plan file is the JSON document emitted by a CIP_PROFILE calibration run
(<region>.plan.json): the measured cost of each technique on this machine,
the recommended initial technique, the dependence-distance profile, and the
throttle/batch hints the runtime warm-starts from. Directory arguments are
expanded to every *.plan.json inside them (non-recursive), mirroring how
CIP_PLAN=<dir> resolves per-region plans.

Default mode pretty-prints each plan as a table. --validate prints one
"<path>: OK" line per valid plan and nothing else; any invalid plan is
reported on stderr and the exit status is 1. Validation mirrors the C++
loader (plan::parsePlan) exactly: every field is required, types are
strict, numbers must be non-negative, and the version must match — a plan
this script accepts is a plan the runtime accepts, and vice versa.

Sentinels: 0 means "none" for min_dependence_distance (conflict-free),
spec_distance (unthrottled), max_batch_hint (engine default),
shadow_shards (serial scheduler), and sched_threads (single scheduler
thread).
"""

import json
import os
import sys

PLAN_VERSION = 4

# policy::techniqueName order — Technique enum values 0..3.
TECHNIQUES = ["barrier", "domore", "domore-dup", "speccross"]

# memory::substrateName spellings the ckpt_substrate hint may carry; ""
# is the none-sentinel (the profiling run never measured SPECCROSS).
CKPT_SUBSTRATES = ["eager", "pagedirty", "softdirty", "auto"]

# Same static diagnostics the C++ parser answers with.
GRAMMAR = "a plan_version 4 region plan object (see DESIGN.md section 13)"
VERSION_ERR = "plan_version 4 (re-profile with this build's CIP_PROFILE)"


def get_number(obj, key):
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool) or \
            value < 0:
        return None
    return float(value)


def get_u64(obj, key):
    value = get_number(obj, key)
    return None if value is None else int(value)


def get_u32(obj, key):
    value = get_number(obj, key)
    if value is None or value > 4294967295.0:
        return None
    return int(value)


def get_bool(obj, key):
    value = obj.get(key)
    return value if isinstance(value, bool) else None


def get_string(obj, key):
    value = obj.get(key)
    return value if isinstance(value, str) else None


def parse_plan(text):
    """Mirror of plan::parsePlan: returns (plan, None) or (None, expected)
    where `expected` is the same grammar string the runtime prints."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return None, GRAMMAR
    if not isinstance(doc, dict):
        return None, GRAMMAR

    version = get_u32(doc, "plan_version")
    if version is None:
        return None, GRAMMAR
    if version != PLAN_VERSION:
        return None, VERSION_ERR

    plan = {"plan_version": version}
    plan["region"] = get_string(doc, "region")
    plan["threads"] = get_u32(doc, "threads")
    plan["calibration_epochs"] = get_u32(doc, "calibration_epochs")
    plan["initial"] = get_string(doc, "initial")
    plan["hold_windows"] = get_u32(doc, "hold_windows")
    if None in plan.values() or plan["initial"] not in TECHNIQUES:
        return None, GRAMMAR

    techs = doc.get("techniques")
    if not isinstance(techs, dict):
        return None, GRAMMAR
    plan["techniques"] = {}
    for name in TECHNIQUES:
        row = techs.get(name)
        if not isinstance(row, dict):
            return None, GRAMMAR
        cal = {
            "measured": get_bool(row, "measured"),
            "sec_per_epoch": get_number(row, "sec_per_epoch"),
            "abort_rate": get_number(row, "abort_rate"),
            "conflict_density": get_number(row, "conflict_density"),
            "scheduler_ratio": get_number(row, "scheduler_ratio"),
        }
        if None in cal.values():
            return None, GRAMMAR
        plan["techniques"][name] = cal

    tail = {
        "sequential_sec_per_epoch": get_number(doc,
                                               "sequential_sec_per_epoch"),
        "predicted_sec_per_epoch": get_number(doc, "predicted_sec_per_epoch"),
        "min_dependence_distance": get_u64(doc, "min_dependence_distance"),
        "min_epoch_distance": get_u32(doc, "min_epoch_distance"),
        "conflicting_addresses": get_u64(doc, "conflicting_addresses"),
        "spec_distance": get_u64(doc, "spec_distance"),
        "max_batch_hint": get_u32(doc, "max_batch_hint"),
        "shadow_shards": get_u32(doc, "shadow_shards"),
        "sched_threads": get_u32(doc, "sched_threads"),
        "ckpt_substrate": get_string(doc, "ckpt_substrate"),
    }
    if None in tail.values():
        return None, GRAMMAR
    # The hint must name a real substrate ("" is the none-sentinel); a typo
    # silently falling back to the default would defeat the warm start.
    if tail["ckpt_substrate"] and tail["ckpt_substrate"] not in \
            CKPT_SUBSTRATES:
        return None, GRAMMAR
    plan.update(tail)
    return plan, None


def or_none(value, fmt="{}"):
    return fmt.format(value) if value else "none"


def render_plan(path, plan):
    print(f"{path}")
    print(f"  region {plan['region']}  (plan_version {plan['plan_version']}, "
          f"threads {plan['threads']}, calibrated over "
          f"{plan['calibration_epochs']} epochs)")
    print(f"  {'technique':<12} {'measured':>8} {'sec/epoch':>12} "
          f"{'abort':>8} {'conflict':>9} {'sched%':>7}")
    for name in TECHNIQUES:
        cal = plan["techniques"][name]
        marker = " <- initial" if name == plan["initial"] else ""
        if cal["measured"]:
            print(f"  {name:<12} {'yes':>8} {cal['sec_per_epoch']:>12.6f} "
                  f"{cal['abort_rate']:>8.3f} {cal['conflict_density']:>9.3f} "
                  f"{cal['scheduler_ratio']:>7.1f}{marker}")
        else:
            print(f"  {name:<12} {'no':>8} {'-':>12} {'-':>8} {'-':>9} "
                  f"{'-':>7}{marker}")
    seq = plan["sequential_sec_per_epoch"]
    pred = plan["predicted_sec_per_epoch"]
    speedup = f" ({seq / pred:.2f}x vs sequential)" if pred > 0 else ""
    print(f"  predicted {pred:.6f} sec/epoch, sequential {seq:.6f}"
          f"{speedup}; hold {plan['hold_windows']} windows")
    print(f"  dependences: min task distance "
          f"{or_none(plan['min_dependence_distance'])}, min epoch distance "
          f"{or_none(plan['min_epoch_distance'])}, "
          f"{plan['conflicting_addresses']} conflicting addresses")
    print(f"  hints: spec_distance "
          f"{or_none(plan['spec_distance'])} (0=unthrottled), "
          f"max_batch {or_none(plan['max_batch_hint'])} (0=engine default), "
          f"shadow_shards {or_none(plan['shadow_shards'])} (0=serial), "
          f"sched_threads {or_none(plan['sched_threads'])} (0=single), "
          f"ckpt_substrate {or_none(plan['ckpt_substrate'])}")


def expand(args):
    paths = []
    for arg in args:
        if os.path.isdir(arg):
            found = sorted(os.path.join(arg, name)
                           for name in os.listdir(arg)
                           if name.endswith(".plan.json"))
            if not found:
                print(f"error: {arg}: no *.plan.json files", file=sys.stderr)
                sys.exit(1)
            paths.extend(found)
        else:
            paths.append(arg)
    return paths


def main():
    args = sys.argv[1:]
    validate = "--validate" in args
    args = [a for a in args if a != "--validate"]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    status = 0
    for index, path in enumerate(expand(args)):
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            print(f"error: {path}: {err.strerror}", file=sys.stderr)
            status = 1
            continue
        plan, expected = parse_plan(text)
        if plan is None:
            print(f"error: {path}: expected {expected}", file=sys.stderr)
            status = 1
            continue
        if validate:
            print(f"{path}: OK")
        else:
            if index:
                print()
            render_plan(path, plan)
    return status


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Render CIP_REPORT run-report JSON files human-readable.

Usage: cip_report.py <report.json> [more.json ...]

Each input is one <prefix>.<region>.<seq>.report.json file written by a
RegionTelemetry::finish() when the CIP_REPORT environment knob is set
(schema documented in DESIGN.md, section 8). For every report this prints:

  * the region's nonzero telemetry counters,
  * an ASCII bar chart per nonempty latency histogram,
  * the DOMORE conflict heatmap as a (dep tid -> tid) matrix plus the
    hottest conflicting address buckets,
  * the checkpoint-substrate summary (snapshots, dirty pages, bytes
    copied, PageDirty write-fault latency) when the region checkpointed,
  * one block per SPECCROSS abort with the full forensics record,
  * the adaptive policy engine's decision timeline and switch events
    (one line per window; present for regions run under harness/Adaptive).

Purely presentational: validation lives in validate_bench_json.py --report.
"""

import json
import sys

BAR_WIDTH = 40

HIST_ORDER = [
    "sched_stall_ns",
    "worker_wait_ns",
    "queue_full_ns",
    "epoch_ns",
    "check_ns",
    "barrier_wait_ns",
    "dispatch_batch",
    "server_queue_ns",
    "ckpt_fault_ns",
]


def format_ns(ns):
    """Render a nanosecond quantity with a readable unit."""
    ns = float(ns)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def print_counters(counters):
    nonzero = {k: v for k, v in counters.items() if v}
    if not nonzero:
        print("  counters: all zero")
        return
    print("  counters:")
    width = max(len(k) for k in nonzero)
    for key in sorted(nonzero):
        value = nonzero[key]
        if key.endswith("_ns"):
            print(f"    {key:<{width}}  {value:>14}  ({format_ns(value)})")
        else:
            print(f"    {key:<{width}}  {value:>14}")


def interp_percentile(hist, q):
    """Interpolated percentile over the report's occupied-bucket table: the
    Python mirror of HistogramData::percentileNs (src/telemetry/Histogram.h).
    Each bucket's lower edge is recovered from its upper edge le via
    (le + 1) // 2, since buckets span [2^(k-1), 2^k - 1]; the rank-q
    observation is placed linearly inside its bucket."""
    count = hist["count"]
    if not count:
        return 0
    rank = max(1.0, q * count)
    seen = 0
    for bucket in hist["buckets"]:
        le = bucket["le_ns"]
        lo = 0 if le == 0 else (le + 1) // 2
        lo = min(lo, le)
        if seen + bucket["count"] >= rank:
            into = (rank - seen) / bucket["count"]
            return lo + into * (le - lo)
        seen += bucket["count"]
    return hist["max_ns"]


def print_histogram(name, hist):
    count = hist["count"]
    if not count:
        return
    # dispatch_batch is the one non-nanosecond distribution: its values are
    # iterations per DOMORE WorkRange message.
    fmt = format_ns if name.endswith("_ns") else lambda v: f"{float(v):.1f}"
    mean = hist["sum_ns"] / count
    print(f"  {name}: n={count} mean={fmt(mean)} "
          f"p50={fmt(hist['p50_ns'])} p90={fmt(hist['p90_ns'])} "
          f"p95~={fmt(interp_percentile(hist, 0.95))} "
          f"p99={fmt(hist['p99_ns'])} max={fmt(hist['max_ns'])}")
    buckets = hist["buckets"]
    peak = max(b["count"] for b in buckets)
    for bucket in buckets:
        bar = "#" * max(1, round(BAR_WIDTH * bucket["count"] / peak))
        print(f"    <= {fmt(bucket['le_ns']):>9}  "
              f"{bucket['count']:>10}  {bar}")


def print_heatmap(heatmap, lanes):
    total = heatmap["total_conflicts"]
    if not total:
        print("  heatmap: no conflicts recorded")
        return
    print(f"  heatmap: {total} sync conditions")
    counts = {(p["dep_tid"], p["tid"]): p["count"] for p in heatmap["pairs"]}
    tids = sorted({t for pair in counts for t in pair})
    width = max(len(str(c)) for c in counts.values())
    corner = "dep\\tid"
    width = max(width, max(len(str(t)) for t in tids), len(corner))
    header = "  ".join(f"{t:>{width}}" for t in tids)
    print(f"    {corner:>{width}}  {header}")
    for dep in tids:
        row = "  ".join(
            f"{counts.get((dep, t), 0) or '.':>{width}}" for t in tids)
        print(f"    {dep:>{width}}  {row}")
    if heatmap["top_addr_buckets"]:
        print("    hottest address buckets:")
        for bucket in heatmap["top_addr_buckets"]:
            print(f"      bucket {bucket['bucket']:>3}: "
                  f"{bucket['count']} conflicts "
                  f"(e.g. addr {bucket['example_addr']:#x})")


def print_abort(index, abort):
    confirmed = ("confirmed by exact range recheck" if abort["exact_confirmed"]
                 else "NOT confirmed (signature false positive)")
    print(f"  abort #{index}: cause={abort['cause']} "
          f"scheme={abort['scheme']}")
    print(f"    earlier: epoch {abort['earlier_epoch']} "
          f"tid {abort['earlier_tid']} task {abort['earlier_task']}")
    print(f"    later:   epoch {abort['later_epoch']} "
          f"tid {abort['later_tid']} task {abort['later_task']}")
    if abort["cause"] == "signature_overlap":
        print(f"    overlap at signature bucket {abort['signature_bucket']}, "
              f"{confirmed}")
    print(f"    wasted work: {abort['tasks_unwound']} tasks unwound, "
          f"{format_ns(abort['ns_since_checkpoint'])} since checkpoint")
    print(f"    re-executed epochs [{abort['round_first_epoch']}, "
          f"{abort['round_end_epoch']})")


def print_checkpoint(counters, fault_hist):
    """Checkpoint-substrate summary (DESIGN.md §16): how much each snapshot
    copied and what the PageDirty fault path cost. Derived entirely from
    the counters, so it renders for old and new reports alike."""
    snaps = counters.get("checkpoints_taken", 0)
    if not snaps:
        return
    pages = counters.get("dirty_pages", 0)
    copied = counters.get("ckpt_bytes_copied", 0)
    ckpt_ns = counters.get("checkpoint_ns", 0)
    print(f"  checkpointing: {snaps} snapshots, "
          f"{pages} dirty pages ({pages / snaps:.1f}/snap), "
          f"{copied / (1 << 20):.2f} MiB copied, "
          f"mean snapshot {format_ns(ckpt_ns / snaps)}")
    faults = fault_hist.get("count", 0) if fault_hist else 0
    if faults:
        print(f"    write faults: {faults}, "
              f"p50 {format_ns(fault_hist['p50_ns'])}, "
              f"p99 {format_ns(fault_hist['p99_ns'])}, "
              f"max {format_ns(fault_hist['max_ns'])}")


def print_policy(decisions, switches):
    if not decisions:
        return
    total = sum(d["window_seconds"] for d in decisions)
    overhead = sum(d["decision_ns"] for d in decisions) + \
        sum(s["teardown_ns"] for s in switches)
    print(f"  policy: {len(decisions)} windows, {len(switches)} switches, "
          f"decision+teardown overhead {format_ns(overhead)}")
    for dec in decisions:
        flags = []
        if dec["switched"]:
            flags.append("switch")
        if dec["explore"]:
            flags.append("explore")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"    win {dec['window']:>3} epochs {dec['first_epoch']}+"
              f"{dec['num_epochs']}: {dec['technique']:<10} "
              f"{dec['reason']:<22} "
              f"{format_ns(dec['window_seconds'] * 1e9):>9} "
              f"abort_rate={dec['abort_rate']:.3f} "
              f"density={dec['conflict_density']:.3f}{suffix}")
    for event in switches:
        carry = "warm-carry" if event["warm_carry"] else "full teardown"
        print(f"    switch at win {event['window']}: {event['from']} -> "
              f"{event['to']} ({event['reason']}, {carry}, "
              f"teardown {format_ns(event['teardown_ns'])})")
    if total > 0:
        print(f"    window execution total {format_ns(total * 1e9)}")


def render(path):
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    print(f"== {path}")
    print(f"  region '{report['region']}' seq {report['seq']}, "
          f"{report['lanes']} lanes")
    print_counters(report["counters"])
    for name in HIST_ORDER:
        if name in report["histograms"]:
            print_histogram(name, report["histograms"][name])
    print_checkpoint(report["counters"],
                     report["histograms"].get("ckpt_fault_ns"))
    print_heatmap(report["heatmap"], report["lane_names"])
    aborts = report["aborts"]
    if aborts:
        for index, abort in enumerate(aborts):
            print_abort(index, abort)
    else:
        print("  aborts: none")
    # Older reports predate the policy log; render it when present.
    print_policy(report.get("policy_decisions", []),
                 report.get("switch_events", []))


def main():
    paths = sys.argv[1:]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for index, path in enumerate(paths):
        if index:
            print()
        render(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())

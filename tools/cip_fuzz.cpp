//===- tools/cip_fuzz.cpp - Differential schedule-fuzz driver -------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver over tests/fuzz/ScheduleFuzzer: runs a range of
/// workload seeds through the engine configuration matrix and reports every
/// differential-oracle failure with a copy-pasteable repro command.
///
/// Default matrix per seed:
///   * domore, domore-dup: MaxBatch {1, 16} x shards {0 = serial, 4} x
///     scheduler team {1, 2} when shards > 1 x pool {on, off} x chaos
///     {off, seed-derived} (the chaos axis collapses in builds without
///     -DCIP_CHAOS_HOOKS=ON)
///   * speccross: scheme {range, bloom, smallset} x simd {batched, scalar}
///     x checker lanes {1, 2} x checkpoint substrate {eager, pagedirty} x
///     pool {on, off} x chaos {off, seed-derived}; injected-abort cases
///     additionally replay on the complementary substrate inside the fuzzer
///     (the eager-vs-pagedirty restore oracle)
///   * adaptive: checkpoint substrate {eager, pagedirty} x pool {on, off} x
///     chaos {off, seed-derived}; the policy and
///     window size are derived from the seed inside the fuzzer
///   * server: pool {on, off} x chaos {off, seed-derived}; the budget,
///     queue capacity, client count, and per-request technique/width mix
///     are derived from the seed inside the fuzzer
///
/// Any axis can be pinned from the command line, which is exactly what the
/// repro command printed on failure does:
///
///   cip_fuzz --seeds=256                      # sweep seeds 1..256
///   cip_fuzz --seed=17 --engines=domore --workers=2 --maxbatch=1
///            --pool=0 --chaos=123 --scheme=range   # replay one failure
///
//===----------------------------------------------------------------------===//

#include "tests/fuzz/ScheduleFuzzer.h"

#include "memory/CheckpointSubstrate.h"
#include "support/Chaos.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

using namespace cip;
using namespace cip::fuzz;

namespace {

struct DriverOptions {
  std::uint64_t FirstSeed = 1;
  std::uint64_t NumSeeds = 256;
  bool SingleSeed = false;
  std::vector<Engine> Engines = {Engine::Domore, Engine::DomoreDup,
                                 Engine::SpecCross, Engine::Adaptive,
                                 Engine::Server};
  // Pinned axes: negative / zero sentinel = sweep the default matrix.
  int Workers = 0;          // 0 = derive from seed (2..4)
  long MaxBatch = -1;       // -1 = sweep {1, 16}
  long Shards = -1;         // -1 = sweep {0 = serial, 4}
  long SchedThreads = -1;   // -1 = sweep {0, 2} where shards > 1
  long CheckLanes = -1;     // -1 = sweep {0 = serial scan, 2}
  int Simd = -1;            // -1 = sweep {1, 0}
  int Pool = -1;            // -1 = sweep {1, 0}
  long long Chaos = -1;     // -1 = sweep {0, derived}; >=0 pins
  int SchemeSet = 0;        // nonzero = pinned
  speccross::SignatureScheme Scheme = speccross::SignatureScheme::Range;
  int CkptSet = 0;          // nonzero = pinned
  memory::SubstrateKind Ckpt = memory::SubstrateKind::Eager;
  bool Verbose = false;
};

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seeds=N         number of seeds to sweep (default 256)\n"
      "  --first-seed=K    first seed of the sweep (default 1)\n"
      "  --seed=S          run exactly one seed\n"
      "  --engines=a,b     subset of "
      "domore,domore-dup,speccross,adaptive,server\n"
      "  --workers=W       pin the worker count (default: seed-derived 2..4)\n"
      "  --maxbatch=B      pin DOMORE MaxBatch (default: sweep 1 and 16)\n"
      "  --shards=S        pin DOMORE shadow shards, 0 = serial scheduler\n"
      "                    (default: sweep 0 and 4)\n"
      "  --sched-threads=T pin the DOMORE scheduler-team size, 0 = single\n"
      "                    scheduler thread (default: sweep 0 and 2 at\n"
      "                    shard counts > 1; teams need a sharded shadow)\n"
      "  --check-lanes=L   pin the SPECCROSS checker-lane count, 0 = serial\n"
      "                    in-thread scan (default: sweep 0 and 2)\n"
      "  --simd=0|1        pin SPECCROSS batched checking (default: sweep)\n"
      "  --pool=0|1        pin the thread-pool substrate (default: sweep)\n"
      "  --chaos=C         pin the chaos seed, 0 = off (default: sweep)\n"
      "  --scheme=S        pin the SPECCROSS scheme: range|bloom|smallset\n"
      "  --ckpt=S          pin the checkpoint substrate (DESIGN.md §16):\n"
      "                    eager|pagedirty|softdirty|auto (default:\n"
      "                    speccross and adaptive sweep eager and pagedirty;\n"
      "                    the checkpoint-free engines run eager)\n"
      "  --verbose         print every configuration as it runs\n",
      Prog);
}

bool parseArgs(int Argc, char **Argv, DriverOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    const std::string_view Arg = Argv[I];
    const auto Value = [&](std::string_view Prefix) {
      return std::string(Arg.substr(Prefix.size()));
    };
    if (Arg.rfind("--seeds=", 0) == 0)
      O.NumSeeds = std::strtoull(Value("--seeds=").c_str(), nullptr, 10);
    else if (Arg.rfind("--first-seed=", 0) == 0)
      O.FirstSeed =
          std::strtoull(Value("--first-seed=").c_str(), nullptr, 10);
    else if (Arg.rfind("--seed=", 0) == 0) {
      O.FirstSeed = std::strtoull(Value("--seed=").c_str(), nullptr, 10);
      O.NumSeeds = 1;
      O.SingleSeed = true;
    } else if (Arg.rfind("--engines=", 0) == 0) {
      O.Engines.clear();
      std::string List = Value("--engines=");
      std::size_t Pos = 0;
      while (Pos <= List.size()) {
        const std::size_t Comma = List.find(',', Pos);
        const std::string Name =
            List.substr(Pos, Comma == std::string::npos ? std::string::npos
                                                        : Comma - Pos);
        Engine E;
        if (!parseEngine(Name, E)) {
          std::fprintf(stderr, "error: unknown engine '%s'\n", Name.c_str());
          return false;
        }
        O.Engines.push_back(E);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (Arg.rfind("--workers=", 0) == 0)
      O.Workers = std::atoi(Value("--workers=").c_str());
    else if (Arg.rfind("--maxbatch=", 0) == 0)
      O.MaxBatch = std::atol(Value("--maxbatch=").c_str());
    else if (Arg.rfind("--shards=", 0) == 0)
      O.Shards = std::atol(Value("--shards=").c_str());
    else if (Arg.rfind("--sched-threads=", 0) == 0)
      O.SchedThreads = std::atol(Value("--sched-threads=").c_str());
    else if (Arg.rfind("--check-lanes=", 0) == 0)
      O.CheckLanes = std::atol(Value("--check-lanes=").c_str());
    else if (Arg.rfind("--simd=", 0) == 0)
      O.Simd = std::atoi(Value("--simd=").c_str());
    else if (Arg.rfind("--pool=", 0) == 0)
      O.Pool = std::atoi(Value("--pool=").c_str());
    else if (Arg.rfind("--chaos=", 0) == 0)
      O.Chaos = std::atoll(Value("--chaos=").c_str());
    else if (Arg.rfind("--scheme=", 0) == 0) {
      if (!parseScheme(Value("--scheme="), O.Scheme)) {
        std::fprintf(stderr, "error: unknown scheme in '%s'\n", Argv[I]);
        return false;
      }
      O.SchemeSet = 1;
    } else if (Arg.rfind("--ckpt=", 0) == 0) {
      if (!memory::parseSubstrateName(Value("--ckpt=").c_str(), O.Ckpt)) {
        std::fprintf(stderr, "error: unknown substrate in '%s'\n", Argv[I]);
        return false;
      }
      O.CkptSet = 1;
    } else if (Arg == "--verbose")
      O.Verbose = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Argv[I]);
      usage(Argv[0]);
      return false;
    }
  }
  if (O.NumSeeds == 0 || O.Engines.empty()) {
    std::fprintf(stderr, "error: nothing to run\n");
    return false;
  }
  return true;
}

/// Chaos seed derived from the workload seed when the axis is swept, so a
/// sweep perturbs every seed differently but reproducibly.
std::uint64_t derivedChaosSeed(std::uint64_t Seed) {
  return Seed * 0x9e3779b97f4a7c15ULL + 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  const bool ChaosBuild = chaos::compiledIn();
  if (O.Chaos > 0 && !ChaosBuild)
    std::fprintf(stderr,
                 "warning: --chaos=%lld has no effect: this binary was built "
                 "without -DCIP_CHAOS_HOOKS=ON\n",
                 O.Chaos);

  std::uint64_t Runs = 0;
  std::uint64_t Failures = 0;
  std::string FirstRepro;

  for (std::uint64_t S = O.FirstSeed; S < O.FirstSeed + O.NumSeeds; ++S) {
    const std::uint32_t Workers =
        O.Workers > 0 ? static_cast<std::uint32_t>(O.Workers)
                      : static_cast<std::uint32_t>(2 + S % 3);

    std::vector<std::uint64_t> ChaosAxis;
    if (O.Chaos >= 0)
      ChaosAxis = {static_cast<std::uint64_t>(O.Chaos)};
    else if (ChaosBuild)
      ChaosAxis = {0, derivedChaosSeed(S)};
    else
      ChaosAxis = {0}; // the axis collapses without compiled-in hooks

    const std::vector<bool> PoolAxis =
        O.Pool >= 0 ? std::vector<bool>{O.Pool != 0}
                    : std::vector<bool>{true, false};

    // The checkpoint axis only multiplies the engines that checkpoint
    // (speccross, adaptive); the DOMORE engines and the server honor a pin
    // but default to eager rather than doubling their matrices for a knob
    // they never exercise (the server's speccross grants do checkpoint, but
    // those paths are the same registries the speccross axis already runs).
    const std::vector<memory::SubstrateKind> CkptAxis =
        O.CkptSet ? std::vector<memory::SubstrateKind>{O.Ckpt}
                  : std::vector<memory::SubstrateKind>{
                        memory::SubstrateKind::Eager,
                        memory::SubstrateKind::PageDirty};
    const std::vector<memory::SubstrateKind> CkptPin = {O.Ckpt};

    for (Engine E : O.Engines) {
      std::vector<FuzzOptions> Configs;
      if (E == Engine::SpecCross) {
        std::vector<speccross::SignatureScheme> Schemes;
        if (O.SchemeSet)
          Schemes = {O.Scheme};
        else
          Schemes = {speccross::SignatureScheme::Range,
                     speccross::SignatureScheme::Bloom,
                     speccross::SignatureScheme::SmallSet};
        const std::vector<bool> SimdAxis =
            O.Simd >= 0 ? std::vector<bool>{O.Simd != 0}
                        : std::vector<bool>{true, false};
        const std::vector<std::uint32_t> LaneAxis =
            O.CheckLanes >= 0 ? std::vector<std::uint32_t>{
                                    static_cast<std::uint32_t>(O.CheckLanes)}
                              : std::vector<std::uint32_t>{0, 2};
        for (auto Scheme : Schemes)
          for (bool Simd : SimdAxis)
            for (std::uint32_t Lanes : LaneAxis)
              for (auto Ckpt : CkptAxis)
                for (bool Pool : PoolAxis)
                  for (std::uint64_t Chaos : ChaosAxis) {
                    FuzzOptions F;
                    F.Eng = E;
                    F.Workers = Workers;
                    F.UsePool = Pool;
                    F.ChaosSeed = Chaos;
                    F.Scheme = Scheme;
                    F.Simd = Simd;
                    F.CheckLanes = Lanes;
                    F.Ckpt = Ckpt;
                    Configs.push_back(F);
                  }
      } else if (E == Engine::Adaptive || E == Engine::Server) {
        for (auto Ckpt : E == Engine::Adaptive ? CkptAxis : CkptPin)
          for (bool Pool : PoolAxis)
            for (std::uint64_t Chaos : ChaosAxis) {
              FuzzOptions F;
              F.Eng = E;
              F.Workers = Workers;
              F.UsePool = Pool;
              F.ChaosSeed = Chaos;
              F.Ckpt = Ckpt;
              Configs.push_back(F);
            }
      } else {
        std::vector<std::size_t> Batches;
        if (O.MaxBatch > 0)
          Batches = {static_cast<std::size_t>(O.MaxBatch)};
        else
          Batches = {1, 16};
        const std::vector<std::uint32_t> ShardAxis =
            O.Shards >= 0 ? std::vector<std::uint32_t>{
                                static_cast<std::uint32_t>(O.Shards)}
                          : std::vector<std::uint32_t>{0, 4};
        for (std::size_t Batch : Batches)
          for (std::uint32_t Shards : ShardAxis) {
            // A scheduler team needs a sharded shadow: at shards <= 1 the
            // runtime runs one scheduler thread regardless, so sweeping the
            // axis there would only duplicate configurations.
            const std::vector<std::uint32_t> SchedAxis =
                O.SchedThreads >= 0
                    ? std::vector<std::uint32_t>{static_cast<std::uint32_t>(
                          O.SchedThreads)}
                    : (Shards > 1 ? std::vector<std::uint32_t>{0, 2}
                                  : std::vector<std::uint32_t>{0});
            for (std::uint32_t Sched : SchedAxis)
              for (bool Pool : PoolAxis)
                for (std::uint64_t Chaos : ChaosAxis) {
                  FuzzOptions F;
                  F.Eng = E;
                  F.Workers = Workers;
                  F.MaxBatch = Batch;
                  F.Shards = Shards;
                  F.SchedThreads = Sched;
                  F.UsePool = Pool;
                  F.ChaosSeed = Chaos;
                  F.Ckpt = O.Ckpt; // honored but checkpoint-free
                  Configs.push_back(F);
                }
          }
      }

      for (const FuzzOptions &F : Configs) {
        if (O.Verbose)
          std::fprintf(stderr, "run: %s\n", reproCommand(S, F).c_str());
        const FuzzResult R = runFuzzCase(S, F);
        ++Runs;
        if (R.Ok)
          continue;
        ++Failures;
        std::fprintf(stderr, "FAIL seed=%" PRIu64 " engine=%s\n%s", S,
                     engineName(F.Eng), R.Failure.c_str());
        std::fprintf(stderr, "repro: %s\n", R.Repro.c_str());
        if (FirstRepro.empty())
          FirstRepro = R.Repro;
      }
    }
    if (!O.SingleSeed && (S - O.FirstSeed + 1) % 64 == 0)
      std::fprintf(stderr, "cip_fuzz: %" PRIu64 "/%" PRIu64 " seeds, %" PRIu64
                           " runs, %" PRIu64 " failures\n",
                   S - O.FirstSeed + 1, O.NumSeeds, Runs, Failures);
  }

  std::printf("cip_fuzz: %" PRIu64 " runs over %" PRIu64
              " seeds, %" PRIu64 " failures%s\n",
              Runs, O.NumSeeds, Failures,
              ChaosBuild ? " (chaos hooks compiled in)" : "");
  if (Failures) {
    std::printf("first repro: %s\n", FirstRepro.c_str());
    return 1;
  }
  return 0;
}

//===- examples/quickstart.cpp - Smallest end-to-end usage ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parallelize your own loop nest across invocation boundaries.
///
/// The library's execution model: your program is a sequence of *epochs*
/// (inner-loop invocations that a conventional parallelization would fence
/// with barriers); each epoch is a set of independent *tasks*; each task
/// can name the abstract addresses it touches. Implement the
/// workloads::Workload interface once, and the same description runs
/// sequentially, under pthread barriers, under DOMORE, and under SPECCROSS.
///
/// Here: a time-stepped vector relaxation (the Fig 1.3 program). Build and
/// run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
/// Set CIP_TRACE=<prefix> to additionally dump one Chrome trace per
/// parallel region (open the .trace.json files in a trace viewer to see the
/// scheduler/worker/checker lanes, sync-condition arrows, and barriers).
///
//===----------------------------------------------------------------------===//

#include "harness/Adaptive.h"
#include "harness/Executor.h"
#include "telemetry/Telemetry.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>

using namespace cip;

namespace {

/// Fig 1.3: for each timestep, L1 writes A from B, then L2 writes B from A.
/// Tasks are element blocks; the stencil reaches one block left/right, so
/// consecutive epochs genuinely depend on each other.
class RelaxWorkload final : public workloads::Workload {
public:
  RelaxWorkload(unsigned Steps, unsigned Blocks, unsigned BlockSize)
      : Steps(Steps), Blocks(Blocks), BlockSize(BlockSize),
        A(static_cast<std::size_t>(Blocks) * BlockSize),
        B(A.size()) {
    reset();
  }

  const char *name() const override { return "relax"; }

  void reset() override {
    for (std::size_t I = 0; I < A.size(); ++I) {
      A[I] = 0.0;
      B[I] = static_cast<double>(I % 17);
    }
  }

  std::uint32_t numEpochs() const override { return 2 * Steps; }
  std::size_t numTasks(std::uint32_t) const override { return Blocks; }

  void runTask(std::uint32_t Epoch, std::size_t Task) override {
    auto &Src = Epoch % 2 == 0 ? B : A;
    auto &Dst = Epoch % 2 == 0 ? A : B;
    const std::size_t Lo = Task * BlockSize;
    for (std::size_t I = Lo; I < Lo + BlockSize; ++I) {
      const std::size_t L = I > 0 ? I - 1 : I;
      const std::size_t R = I + 1 < Src.size() ? I + 1 : I;
      Dst[I] = workloads::burnFlops(
          (Src[L] + Src[I] + Src[R]) / 3.0, 64);
    }
  }

  void taskAddresses(std::uint32_t Epoch, std::size_t Task,
                     std::vector<std::uint64_t> &Addrs) const override {
    // Block-granular: even addresses = A blocks, odd = B blocks.
    const std::uint64_t Dst = Epoch % 2 == 0 ? 0 : 1;
    const std::uint64_t Src = 1 - Dst;
    Addrs.push_back(2 * Task + Dst);
    Addrs.push_back(2 * Task + Src);
    if (Task > 0)
      Addrs.push_back(2 * (Task - 1) + Src);
    if (Task + 1 < Blocks)
      Addrs.push_back(2 * (Task + 1) + Src);
  }

  std::uint64_t addressSpaceSize() const override { return 2 * Blocks; }

  void registerState(speccross::CheckpointRegistry &Reg) override {
    Reg.registerBuffer(A);
    Reg.registerBuffer(B);
  }

  std::uint64_t checksum() const override {
    return workloads::hashDoubles(B, workloads::hashDoubles(A));
  }

private:
  const unsigned Steps, Blocks, BlockSize;
  std::vector<double> A, B;
};

} // namespace

int main() {
  RelaxWorkload W(/*Steps=*/200, /*Blocks=*/64, /*BlockSize=*/256);
  const unsigned Threads = 2;

  // 1. Sequential reference.
  const harness::ExecResult Seq = harness::runSequential(W);
  std::printf("sequential:       %7.3fs  checksum %016llx\n", Seq.Seconds,
              static_cast<unsigned long long>(Seq.Checksum));

  // 2. Conventional parallelization: barrier after every epoch.
  W.reset();
  const harness::ExecResult Bar = harness::runBarrier(W, Threads);
  std::printf("pthread barrier:  %7.3fs  (%.2fx, %.1f%% of thread-time "
              "idle at barriers)\n",
              Bar.Seconds, Seq.Seconds / Bar.Seconds,
              100.0 * static_cast<double>(Bar.BarrierIdleNanos) /
                  (Bar.Seconds * 1e9 * Threads));

  // 3. SPECCROSS: profile, throttle, speculate across the barriers.
  const std::uint64_t Dist = harness::profiledSpecDistance(W, Threads);
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Threads;
  Cfg.SpecDistance = Dist;
  speccross::SpecStats Stats;
  const harness::ExecResult Spec =
      harness::runSpecCross(W, Cfg, speccross::SpecMode::Speculation, &Stats);
  std::printf("SPECCROSS:        %7.3fs  (%.2fx, %llu checks, %llu "
              "misspeculations)\n",
              Spec.Seconds, Seq.Seconds / Spec.Seconds,
              static_cast<unsigned long long>(Stats.CheckRequests),
              static_cast<unsigned long long>(Stats.Misspeculations));

  // 4. DOMORE: non-speculative cross-invocation scheduling. Owner-compute
  // keeps each block's tasks on one worker, so only the stencil's
  // block-boundary dependences turn into sync conditions.
  W.reset();
  domore::DomoreStats DStats;
  const harness::ExecResult Dom =
      harness::runDomore(W, Threads + 1, domore::PolicyKind::OwnerCompute,
                         &DStats);
  std::printf("DOMORE:           %7.3fs  (%.2fx, %llu sync conditions)\n",
              Dom.Seconds, Seq.Seconds / Dom.Seconds,
              static_cast<unsigned long long>(DStats.SyncConditions));

  // 5. Telemetry: every strategy's ExecResult carries the region's counter
  // totals (all zero when built with -DCIP_TELEMETRY=0).
  if (telemetry::compiledIn()) {
    using telemetry::Counter;
    std::printf("telemetry:        DOMORE waited %.3fms on sync conditions; "
                "SPECCROSS spun %llu times on the throttle\n",
                static_cast<double>(
                    Dom.Telemetry.get(Counter::WorkerWaitNs)) * 1e-6,
                static_cast<unsigned long long>(
                    Spec.Telemetry.get(Counter::ThrottleSpins)));
    if (!std::getenv("CIP_TRACE"))
      std::printf("                  (set CIP_TRACE=<prefix> to dump Chrome "
                  "traces of these regions)\n");
  }

  // 6. Adaptive: the policy engine picks (and mid-run revises) the
  // technique per window of epochs from the runtime's own signals.
  // CIP_POLICY=fixed:<tech>|threshold|bandit selects the policy from the
  // environment; without it this demo runs the threshold policy.
  W.reset();
  harness::AdaptiveStats Ada;
  harness::ExecResult Adp;
  if (!harness::runAdaptiveFromEnv(W, Threads + 1, Adp, &Ada)) {
    policy::PolicyConfig PCfg;
    PCfg.Kind = policy::PolicyKind::Threshold;
    Adp = harness::runAdaptive(W, Threads + 1, PCfg, &Ada);
  }
  std::printf("adaptive:         %7.3fs  (%.2fx, %u windows, %zu switches, "
              "last technique %s)\n",
              Adp.Seconds, Seq.Seconds / Adp.Seconds, Ada.Windows,
              Ada.Switches.size(),
              Ada.Decisions.empty() ? "?" : Ada.Decisions.back().Technique);
  // Profile-guided planning: CIP_PROFILE=<dir> calibrates and writes the
  // region's plan file; CIP_PLAN=<path|dir> warm-starts from one.
  if (Ada.Plan.Profiled)
    std::printf("plan:             profiled -> %s (initial %s, predicted "
                "%.3fs/epoch)\n",
                Ada.Plan.Path.empty() ? "(in-memory)" : Ada.Plan.Path.c_str(),
                Ada.Plan.InitialTechnique.c_str(),
                Ada.Plan.PredictedSecondsPerEpoch);
  else if (Ada.Plan.Loaded)
    std::printf("plan:             warm-started from %s (%s, initial %s)\n",
                Ada.Plan.Path.c_str(), Ada.Plan.Source.c_str(),
                Ada.Plan.InitialTechnique.c_str());

  const bool AllMatch =
      Bar.Checksum == Seq.Checksum && Spec.Checksum == Seq.Checksum &&
      Dom.Checksum == Seq.Checksum && Adp.Checksum == Seq.Checksum;
  std::printf("\nall executions bit-identical: %s\n",
              AllMatch ? "yes" : "NO (bug!)");
  return AllMatch ? 0 : 1;
}

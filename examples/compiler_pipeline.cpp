//===- examples/compiler_pipeline.cpp - The automatic pipeline -----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain scenario 3: the *automatic* half of the title. Builds the CG loop
/// nest in the mini-IR, runs the full DOMORE compiler pipeline on it —
/// loop analysis, PDG, DAG-SCC, scheduler/worker partitioning, computeAddr
/// slicing, MTCG code generation — prints the generated scheduler and
/// worker functions (compare with the paper's Fig 3.7), and then executes
/// the generated pair on real threads through the interpreter, verifying
/// the parallel memory state against sequential execution. Also runs the
/// SPECCROSS region detector on a two-phase nest and shows the Algorithm 5
/// instrumentation it inserts.
///
//===----------------------------------------------------------------------===//

#include "analysis/PDG.h"
#include "analysis/SCC.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "tests/TestNests.h"
#include "transform/DomoreDriver.h"
#include "transform/DomorePartitioner.h"
#include "transform/MTCG.h"
#include "transform/Slicer.h"
#include "transform/SpecCrossPlanner.h"

#include <cstdio>

using namespace cip;
using namespace cip::ir;
using namespace cip::tests;
using namespace cip::transform;

int main() {
  //===--------------------------------------------------------------------===
  // DOMORE pipeline on the CG nest.
  //===--------------------------------------------------------------------===
  Module M;
  CgNest Nest = buildCgNest(M, /*NumRows=*/60, /*DataSize=*/64);
  std::printf("=== input loop nest ===\n%s\n",
              printFunction(*Nest.F).c_str());

  CFG G(*Nest.F);
  DominatorTree DT(G, false), PDT(G, true);
  LoopInfo LI(G, DT);
  Loop *Outer = LI.topLevelLoops().front();
  Loop *Inner = Outer->subLoops().front();

  analysis::PDG Pdg(*Nest.F, G, PDT, LI, *Outer);
  std::printf("PDG: %zu nodes, %zu edges; carried memory dep: %s; "
              "cross-invocation dep: %s\n",
              Pdg.nodes().size(), Pdg.edges().size(),
              Pdg.hasLoopCarriedMemoryDep() ? "yes" : "no",
              Pdg.hasCrossInvocationMemoryDep() ? "yes" : "no");
  analysis::DagScc Dag(Pdg);
  std::printf("DAG-SCC: %u components\n", Dag.numComponents());

  const Partition Part = partitionDomore(Pdg, Dag, *Outer, *Inner, G);
  std::printf("partition: %zu scheduler instructions, %zu worker "
              "instructions\n",
              Part.Scheduler.size(), Part.Worker.size());

  const SliceResult Slice = sliceComputeAddr(Pdg, Part);
  std::printf("computeAddr slice: %s (%zu tracked accesses, weight ratio "
              "%.2f)\n",
              Slice.Feasible ? "feasible" : Slice.Reason.c_str(),
              Slice.TrackedAccesses.size(), Slice.WeightRatio);
  if (!Slice.Feasible)
    return 1;

  const MTCGResult Gen =
      generateDomorePair(M, *Nest.F, *Outer, *Inner, Part, Slice);
  if (!Gen.Feasible) {
    std::printf("MTCG infeasible: %s\n", Gen.Reason.c_str());
    return 1;
  }
  std::printf("\n=== generated scheduler (cf. Fig 3.7) ===\n%s\n",
              printFunction(*Gen.SchedulerFn).c_str());
  std::printf("=== generated worker ===\n%s\n",
              printFunction(*Gen.WorkerFn).c_str());
  if (!verifyFunction(*Gen.SchedulerFn) || !verifyFunction(*Gen.WorkerFn)) {
    std::printf("generated code failed verification!\n");
    return 1;
  }

  // Execute: sequential interpretation vs the generated pair on 3 threads.
  MemoryState SeqMem(M), ParMem(M);
  seedCgMemory(Nest, SeqMem, /*RowLen=*/6, /*Stride=*/2);
  seedCgMemory(Nest, ParMem, /*RowLen=*/6, /*Stride=*/2);
  const InterpResult SeqRun = interpret(*Nest.F, {}, SeqMem);
  const DomorePairResult Par =
      runDomorePair(*Gen.SchedulerFn, *Gen.WorkerFn, {}, ParMem,
                    /*NumWorkers=*/3);
  std::printf("sequential interp: %llu insts; parallel pair: %llu "
              "iterations, %llu sync conditions\n",
              static_cast<unsigned long long>(SeqRun.ExecutedInsts),
              static_cast<unsigned long long>(Par.Iterations),
              static_cast<unsigned long long>(Par.SyncConditions));
  std::printf("memory digests match: %s\n\n",
              SeqMem.digest() == ParMem.digest() ? "yes" : "NO (bug!)");
  if (SeqMem.digest() != ParMem.digest())
    return 1;

  //===--------------------------------------------------------------------===
  // SPECCROSS region detection + Algorithm 5 on the two-phase nest.
  //===--------------------------------------------------------------------===
  Module M2;
  PhaseNest Phases = buildPhaseNest(M2, /*Steps=*/8, /*Width=*/12);
  CFG G2(*Phases.F);
  DominatorTree DT2(G2, false), PDT2(G2, true);
  LoopInfo LI2(G2, DT2);
  const SpecCrossCandidates Cands =
      findSpecCrossRegions(*Phases.F, G2, PDT2, LI2);
  std::printf("=== SPECCROSS region detection ===\n");
  for (const auto &Plan : Cands.Regions)
    std::printf("region at '%s': %zu inner loops, %zu speculated "
                "accesses\n",
                Plan.OuterLoop->header()->name().c_str(),
                Plan.InnerLoops.size(), Plan.SpeculatedAccesses.size());
  if (Cands.Regions.empty()) {
    std::printf("no region found!\n");
    return 1;
  }
  const InsertionStats Ins =
      insertSpecCrossCalls(M2, Cands.Regions.front(), G2);
  std::printf("Algorithm 5 inserted: %u enter_barrier, %u enter_task, %u "
              "exit_task, %u spec_access\n\n",
              Ins.EnterBarrier, Ins.EnterTask, Ins.ExitTask, Ins.SpecAccess);
  std::printf("=== instrumented region ===\n%s",
              printFunction(*Phases.F).c_str());
  return 0;
}

//===- examples/speccross_fluid.cpp - SPECCROSS on FLUIDANIMATE ----------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain scenario 2: the paper's case-study application (§5.4). The
/// whole-frame loop of the SPH fluid runs eight parallel phases per frame;
/// barriers between phases dominate. This example walks the full SPECCROSS
/// flow the paper's compiler automates:
///
///   1. profile on a train input -> minimum dependence distance (54 here,
///      matching Table 5.3),
///   2. configure the speculative range from the profile,
///   3. run speculatively, watching the checker statistics,
///   4. demonstrate rollback: inject a misspeculation and confirm the
///      recovered execution is still bit-identical to sequential.
///
//===----------------------------------------------------------------------===//

#include "harness/Executor.h"
#include "workloads/FluidAnimate.h"

#include <cstdio>

using namespace cip;
using namespace cip::workloads;

int main() {
  FluidAnimate2Workload W(FluidAnimate2Params::forScale(Scale::Train));
  const unsigned Threads = 2;

  // 1. Profile.
  speccross::ProfileResult Profile;
  const std::uint64_t Dist =
      harness::profiledSpecDistance(W, Threads, &Profile);
  if (Profile.conflictFree())
    std::printf("profile: conflict-free (unthrottled speculation)\n");
  else
    std::printf("profile: min cross-thread dependence distance %llu "
                "(Table 5.3 reports 54), %llu conflicts\n",
                static_cast<unsigned long long>(
                    Profile.MinDependenceDistance),
                static_cast<unsigned long long>(
                    Profile.CrossEpochConflicts));

  const harness::ExecResult Seq = harness::runSequential(W);
  W.reset();
  const harness::ExecResult Bar = harness::runBarrier(W, Threads);

  // 2+3. Speculate with the profiled throttle.
  W.reset();
  speccross::SpecConfig Cfg;
  Cfg.NumWorkers = Threads;
  Cfg.SpecDistance = Dist;
  Cfg.CheckpointIntervalEpochs = 200;
  speccross::SpecStats Stats;
  const harness::ExecResult Spec =
      harness::runSpecCross(W, Cfg, speccross::SpecMode::Speculation, &Stats);

  std::printf("\nsequential        %8.3fs\n", Seq.Seconds);
  std::printf("barrier (%uT)      %8.3fs  (%.2fx)\n", Threads, Bar.Seconds,
              Seq.Seconds / Bar.Seconds);
  std::printf("SPECCROSS (%uT)    %8.3fs  (%.2fx; %llu checks, %llu "
              "comparisons, %llu misspec, %llu checkpoints)\n",
              Threads, Spec.Seconds, Seq.Seconds / Spec.Seconds,
              static_cast<unsigned long long>(Stats.CheckRequests),
              static_cast<unsigned long long>(Stats.SignatureComparisons),
              static_cast<unsigned long long>(Stats.Misspeculations),
              static_cast<unsigned long long>(Stats.CheckpointsTaken));
  if (Spec.Checksum != Seq.Checksum) {
    std::printf("checksum mismatch!\n");
    return 1;
  }

  // 4. Rollback demonstration.
  W.reset();
  Cfg.InjectMisspecAtEpoch = W.numEpochs() / 2;
  speccross::SpecStats FaultStats;
  const harness::ExecResult Faulted = harness::runSpecCross(
      W, Cfg, speccross::SpecMode::Speculation, &FaultStats);
  std::printf("\ninjected a misspeculation at epoch %u: %llu rollback(s), "
              "%llu epochs re-executed non-speculatively, recovery %.3fms\n",
              W.numEpochs() / 2,
              static_cast<unsigned long long>(FaultStats.Misspeculations),
              static_cast<unsigned long long>(FaultStats.ReexecutedEpochs),
              FaultStats.RecoverySeconds * 1e3);
  std::printf("recovered execution bit-identical to sequential: %s\n",
              Faulted.Checksum == Seq.Checksum ? "yes" : "NO (bug!)");
  return Faulted.Checksum == Seq.Checksum ? 0 : 1;
}

//===- examples/domore_cg.cpp - DOMORE on the CG loop nest ---------------===//
//
// Part of the cross-invocation-parallelism reproduction of Huang et al.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain scenario 1: the dissertation's running example. CG's outer loop
/// carries a frequently-manifesting dependence (72.4% of invocations), so
/// speculation would thrash — DOMORE's non-speculative runtime scheduling
/// is the right tool (Ch. 3). This example shows both engine variants and
/// the runtime statistics the paper discusses: detected sync conditions,
/// the scheduler/worker busy ratio (Table 5.2), and the LOCALWRITE-style
/// owner-compute policy.
///
//===----------------------------------------------------------------------===//

#include "harness/Executor.h"
#include "workloads/CG.h"

#include <cstdio>

using namespace cip;
using namespace cip::workloads;

int main() {
  CGParams Params = CGParams::forScale(Scale::Train);
  CGWorkload W(Params);
  std::printf("CG: %u invocations x %u iterations, %.1f%% of invocation "
              "pairs overlap (paper: 72.4%%)\n\n",
              Params.NumRows, Params.RowLength,
              100.0 * W.measuredManifestRate());

  const harness::ExecResult Seq = harness::runSequential(W);
  std::printf("%-28s %8.3fs\n", "sequential", Seq.Seconds);

  W.reset();
  const harness::ExecResult Bar = harness::runBarrier(W, 2);
  std::printf("%-28s %8.3fs  (%.2fx)\n", "barrier, 2 threads", Bar.Seconds,
              Seq.Seconds / Bar.Seconds);

  for (auto Policy : {domore::PolicyKind::RoundRobin,
                      domore::PolicyKind::OwnerCompute}) {
    W.reset();
    domore::DomoreStats Stats;
    const harness::ExecResult Dom = harness::runDomore(W, 3, Policy, &Stats);
    std::printf("%-28s %8.3fs  (%.2fx, %llu syncs, scheduler busy "
                "%.1f%%)\n",
                Policy == domore::PolicyKind::RoundRobin
                    ? "DOMORE round-robin, 2+1 thr"
                    : "DOMORE owner-compute",
                Dom.Seconds, Seq.Seconds / Dom.Seconds,
                static_cast<unsigned long long>(Stats.SyncConditions),
                Stats.schedulerRatioPercent());
    if (Dom.Checksum != Seq.Checksum) {
      std::printf("checksum mismatch!\n");
      return 1;
    }
  }

  // The §3.4 variant duplicates the scheduler onto every worker — the form
  // that composes with SPECCROSS (and the best performer on small machines,
  // since no core is dedicated to scheduling).
  W.reset();
  domore::DomoreStats DupStats;
  const harness::ExecResult Dup =
      harness::runDomoreDuplicated(W, 2, domore::PolicyKind::RoundRobin,
                                   &DupStats);
  std::printf("%-28s %8.3fs  (%.2fx, %llu syncs)\n",
              "DOMORE duplicated (§3.4)", Dup.Seconds,
              Seq.Seconds / Dup.Seconds,
              static_cast<unsigned long long>(DupStats.SyncConditions));
  if (Dup.Checksum != Seq.Checksum) {
    std::printf("checksum mismatch!\n");
    return 1;
  }
  std::printf("\nall DOMORE executions matched the sequential checksum\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/domore_tests.dir/DomoreTests.cpp.o"
  "CMakeFiles/domore_tests.dir/DomoreTests.cpp.o.d"
  "domore_tests"
  "domore_tests.pdb"
  "domore_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

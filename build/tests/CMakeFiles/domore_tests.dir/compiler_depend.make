# Empty compiler generated dependencies file for domore_tests.
# This may be replaced when dependencies are built.

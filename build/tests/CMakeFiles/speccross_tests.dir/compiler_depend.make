# Empty compiler generated dependencies file for speccross_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/speccross_tests.dir/SpecCrossTests.cpp.o"
  "CMakeFiles/speccross_tests.dir/SpecCrossTests.cpp.o.d"
  "speccross_tests"
  "speccross_tests.pdb"
  "speccross_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccross_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTests.cpp" "tests/CMakeFiles/analysis_tests.dir/AnalysisTests.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/AnalysisTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cip_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cip_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/domore/CMakeFiles/cip_domore.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cip_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/speccross/CMakeFiles/cip_speccross.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cip_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_5_doacross_dswp.dir/bench_fig2_5_doacross_dswp.cpp.o"
  "CMakeFiles/bench_fig2_5_doacross_dswp.dir/bench_fig2_5_doacross_dswp.cpp.o.d"
  "bench_fig2_5_doacross_dswp"
  "bench_fig2_5_doacross_dswp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_5_doacross_dswp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

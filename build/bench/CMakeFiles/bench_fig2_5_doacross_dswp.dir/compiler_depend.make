# Empty compiler generated dependencies file for bench_fig2_5_doacross_dswp.
# This may be replaced when dependencies are built.

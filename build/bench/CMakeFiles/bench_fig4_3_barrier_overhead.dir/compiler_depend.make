# Empty compiler generated dependencies file for bench_fig4_3_barrier_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_4_barrier_demo.dir/bench_fig1_4_barrier_demo.cpp.o"
  "CMakeFiles/bench_fig1_4_barrier_demo.dir/bench_fig1_4_barrier_demo.cpp.o.d"
  "bench_fig1_4_barrier_demo"
  "bench_fig1_4_barrier_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_4_barrier_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1_4_barrier_demo.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_4_tm_overhead.
# This may be replaced when dependencies are built.

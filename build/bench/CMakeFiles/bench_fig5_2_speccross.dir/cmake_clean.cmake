file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_speccross.dir/bench_fig5_2_speccross.cpp.o"
  "CMakeFiles/bench_fig5_2_speccross.dir/bench_fig5_2_speccross.cpp.o.d"
  "bench_fig5_2_speccross"
  "bench_fig5_2_speccross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_speccross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_2_speccross.
# This may be replaced when dependencies are built.

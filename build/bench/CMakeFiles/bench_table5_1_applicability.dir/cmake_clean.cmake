file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_1_applicability.dir/bench_table5_1_applicability.cpp.o"
  "CMakeFiles/bench_table5_1_applicability.dir/bench_table5_1_applicability.cpp.o.d"
  "bench_table5_1_applicability"
  "bench_table5_1_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_1_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

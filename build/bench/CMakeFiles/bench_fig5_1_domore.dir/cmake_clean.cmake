file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_1_domore.dir/bench_fig5_1_domore.cpp.o"
  "CMakeFiles/bench_fig5_1_domore.dir/bench_fig5_1_domore.cpp.o.d"
  "bench_fig5_1_domore"
  "bench_fig5_1_domore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_1_domore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

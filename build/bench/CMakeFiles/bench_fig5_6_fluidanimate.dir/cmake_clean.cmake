file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_fluidanimate.dir/bench_fig5_6_fluidanimate.cpp.o"
  "CMakeFiles/bench_fig5_6_fluidanimate.dir/bench_fig5_6_fluidanimate.cpp.o.d"
  "bench_fig5_6_fluidanimate"
  "bench_fig5_6_fluidanimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_fluidanimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_3_cg_domore.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_3_cg_domore.dir/bench_fig3_3_cg_domore.cpp.o"
  "CMakeFiles/bench_fig3_3_cg_domore.dir/bench_fig3_3_cg_domore.cpp.o.d"
  "bench_fig3_3_cg_domore"
  "bench_fig3_3_cg_domore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_3_cg_domore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

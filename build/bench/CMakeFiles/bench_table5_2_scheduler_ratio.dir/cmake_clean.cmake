file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_2_scheduler_ratio.dir/bench_table5_2_scheduler_ratio.cpp.o"
  "CMakeFiles/bench_table5_2_scheduler_ratio.dir/bench_table5_2_scheduler_ratio.cpp.o.d"
  "bench_table5_2_scheduler_ratio"
  "bench_table5_2_scheduler_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_2_scheduler_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table5_3_profiling.
# This may be replaced when dependencies are built.

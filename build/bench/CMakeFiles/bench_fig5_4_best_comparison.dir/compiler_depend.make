# Empty compiler generated dependencies file for bench_fig5_4_best_comparison.
# This may be replaced when dependencies are built.

# Empty dependencies file for cip_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcip_workloads.a"
)

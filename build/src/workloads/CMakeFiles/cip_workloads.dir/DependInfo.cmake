
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BlackScholes.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/BlackScholes.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/BlackScholes.cpp.o.d"
  "/root/repo/src/workloads/CG.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/CG.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/CG.cpp.o.d"
  "/root/repo/src/workloads/Eclat.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Eclat.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Eclat.cpp.o.d"
  "/root/repo/src/workloads/Equake.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Equake.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Equake.cpp.o.d"
  "/root/repo/src/workloads/Fdtd.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Fdtd.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Fdtd.cpp.o.d"
  "/root/repo/src/workloads/FluidAnimate.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/FluidAnimate.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/FluidAnimate.cpp.o.d"
  "/root/repo/src/workloads/Jacobi.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Jacobi.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Jacobi.cpp.o.d"
  "/root/repo/src/workloads/LLUBench.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/LLUBench.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/LLUBench.cpp.o.d"
  "/root/repo/src/workloads/Loopdep.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Loopdep.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Loopdep.cpp.o.d"
  "/root/repo/src/workloads/Symm.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Symm.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Symm.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/cip_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/cip_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cip_support.dir/DependInfo.cmake"
  "/root/repo/build/src/speccross/CMakeFiles/cip_speccross.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

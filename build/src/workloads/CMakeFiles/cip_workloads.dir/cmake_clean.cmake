file(REMOVE_RECURSE
  "CMakeFiles/cip_workloads.dir/BlackScholes.cpp.o"
  "CMakeFiles/cip_workloads.dir/BlackScholes.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/CG.cpp.o"
  "CMakeFiles/cip_workloads.dir/CG.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Eclat.cpp.o"
  "CMakeFiles/cip_workloads.dir/Eclat.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Equake.cpp.o"
  "CMakeFiles/cip_workloads.dir/Equake.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Fdtd.cpp.o"
  "CMakeFiles/cip_workloads.dir/Fdtd.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/FluidAnimate.cpp.o"
  "CMakeFiles/cip_workloads.dir/FluidAnimate.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Jacobi.cpp.o"
  "CMakeFiles/cip_workloads.dir/Jacobi.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/LLUBench.cpp.o"
  "CMakeFiles/cip_workloads.dir/LLUBench.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Loopdep.cpp.o"
  "CMakeFiles/cip_workloads.dir/Loopdep.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Symm.cpp.o"
  "CMakeFiles/cip_workloads.dir/Symm.cpp.o.d"
  "CMakeFiles/cip_workloads.dir/Workload.cpp.o"
  "CMakeFiles/cip_workloads.dir/Workload.cpp.o.d"
  "libcip_workloads.a"
  "libcip_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cip_support.dir/Barrier.cpp.o"
  "CMakeFiles/cip_support.dir/Barrier.cpp.o.d"
  "libcip_support.a"
  "libcip_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cip_support.
# This may be replaced when dependencies are built.

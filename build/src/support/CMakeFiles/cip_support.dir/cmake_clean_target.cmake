file(REMOVE_RECURSE
  "libcip_support.a"
)

# Empty dependencies file for cip_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcip_ir.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cip_ir.dir/CFG.cpp.o"
  "CMakeFiles/cip_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/cip_ir.dir/Cloning.cpp.o"
  "CMakeFiles/cip_ir.dir/Cloning.cpp.o.d"
  "CMakeFiles/cip_ir.dir/Dominators.cpp.o"
  "CMakeFiles/cip_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/cip_ir.dir/IR.cpp.o"
  "CMakeFiles/cip_ir.dir/IR.cpp.o.d"
  "CMakeFiles/cip_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/cip_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/cip_ir.dir/Interp.cpp.o"
  "CMakeFiles/cip_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/cip_ir.dir/LoopInfo.cpp.o"
  "CMakeFiles/cip_ir.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/cip_ir.dir/Parser.cpp.o"
  "CMakeFiles/cip_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/cip_ir.dir/Verifier.cpp.o"
  "CMakeFiles/cip_ir.dir/Verifier.cpp.o.d"
  "libcip_ir.a"
  "libcip_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

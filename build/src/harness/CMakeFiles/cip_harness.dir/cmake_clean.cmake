file(REMOVE_RECURSE
  "CMakeFiles/cip_harness.dir/Executor.cpp.o"
  "CMakeFiles/cip_harness.dir/Executor.cpp.o.d"
  "CMakeFiles/cip_harness.dir/StagedLoop.cpp.o"
  "CMakeFiles/cip_harness.dir/StagedLoop.cpp.o.d"
  "libcip_harness.a"
  "libcip_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cip_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcip_harness.a"
)

file(REMOVE_RECURSE
  "libcip_domore.a"
)

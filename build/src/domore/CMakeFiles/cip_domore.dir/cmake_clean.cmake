file(REMOVE_RECURSE
  "CMakeFiles/cip_domore.dir/DomoreRuntime.cpp.o"
  "CMakeFiles/cip_domore.dir/DomoreRuntime.cpp.o.d"
  "CMakeFiles/cip_domore.dir/ShadowMemory.cpp.o"
  "CMakeFiles/cip_domore.dir/ShadowMemory.cpp.o.d"
  "libcip_domore.a"
  "libcip_domore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_domore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cip_domore.
# This may be replaced when dependencies are built.

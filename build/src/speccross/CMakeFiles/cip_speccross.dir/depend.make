# Empty dependencies file for cip_speccross.
# This may be replaced when dependencies are built.

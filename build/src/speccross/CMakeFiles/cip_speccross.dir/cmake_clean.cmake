file(REMOVE_RECURSE
  "CMakeFiles/cip_speccross.dir/Checkpoint.cpp.o"
  "CMakeFiles/cip_speccross.dir/Checkpoint.cpp.o.d"
  "CMakeFiles/cip_speccross.dir/SpecCrossRuntime.cpp.o"
  "CMakeFiles/cip_speccross.dir/SpecCrossRuntime.cpp.o.d"
  "libcip_speccross.a"
  "libcip_speccross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_speccross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcip_speccross.a"
)

file(REMOVE_RECURSE
  "libcip_analysis.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/DepProfiler.cpp" "src/analysis/CMakeFiles/cip_analysis.dir/DepProfiler.cpp.o" "gcc" "src/analysis/CMakeFiles/cip_analysis.dir/DepProfiler.cpp.o.d"
  "/root/repo/src/analysis/IndexExpr.cpp" "src/analysis/CMakeFiles/cip_analysis.dir/IndexExpr.cpp.o" "gcc" "src/analysis/CMakeFiles/cip_analysis.dir/IndexExpr.cpp.o.d"
  "/root/repo/src/analysis/PDG.cpp" "src/analysis/CMakeFiles/cip_analysis.dir/PDG.cpp.o" "gcc" "src/analysis/CMakeFiles/cip_analysis.dir/PDG.cpp.o.d"
  "/root/repo/src/analysis/SCC.cpp" "src/analysis/CMakeFiles/cip_analysis.dir/SCC.cpp.o" "gcc" "src/analysis/CMakeFiles/cip_analysis.dir/SCC.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cip_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

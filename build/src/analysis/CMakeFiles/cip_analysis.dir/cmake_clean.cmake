file(REMOVE_RECURSE
  "CMakeFiles/cip_analysis.dir/DepProfiler.cpp.o"
  "CMakeFiles/cip_analysis.dir/DepProfiler.cpp.o.d"
  "CMakeFiles/cip_analysis.dir/IndexExpr.cpp.o"
  "CMakeFiles/cip_analysis.dir/IndexExpr.cpp.o.d"
  "CMakeFiles/cip_analysis.dir/PDG.cpp.o"
  "CMakeFiles/cip_analysis.dir/PDG.cpp.o.d"
  "CMakeFiles/cip_analysis.dir/SCC.cpp.o"
  "CMakeFiles/cip_analysis.dir/SCC.cpp.o.d"
  "libcip_analysis.a"
  "libcip_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cip_analysis.
# This may be replaced when dependencies are built.

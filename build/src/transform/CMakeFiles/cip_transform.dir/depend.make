# Empty dependencies file for cip_transform.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/DomoreDriver.cpp" "src/transform/CMakeFiles/cip_transform.dir/DomoreDriver.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/DomoreDriver.cpp.o.d"
  "/root/repo/src/transform/DomorePartitioner.cpp" "src/transform/CMakeFiles/cip_transform.dir/DomorePartitioner.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/DomorePartitioner.cpp.o.d"
  "/root/repo/src/transform/MTCG.cpp" "src/transform/CMakeFiles/cip_transform.dir/MTCG.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/MTCG.cpp.o.d"
  "/root/repo/src/transform/Parallelizer.cpp" "src/transform/CMakeFiles/cip_transform.dir/Parallelizer.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/Parallelizer.cpp.o.d"
  "/root/repo/src/transform/Slicer.cpp" "src/transform/CMakeFiles/cip_transform.dir/Slicer.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/Slicer.cpp.o.d"
  "/root/repo/src/transform/SpecCrossPlanner.cpp" "src/transform/CMakeFiles/cip_transform.dir/SpecCrossPlanner.cpp.o" "gcc" "src/transform/CMakeFiles/cip_transform.dir/SpecCrossPlanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cip_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/domore/CMakeFiles/cip_domore.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cip_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

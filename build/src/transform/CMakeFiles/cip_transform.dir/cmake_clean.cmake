file(REMOVE_RECURSE
  "CMakeFiles/cip_transform.dir/DomoreDriver.cpp.o"
  "CMakeFiles/cip_transform.dir/DomoreDriver.cpp.o.d"
  "CMakeFiles/cip_transform.dir/DomorePartitioner.cpp.o"
  "CMakeFiles/cip_transform.dir/DomorePartitioner.cpp.o.d"
  "CMakeFiles/cip_transform.dir/MTCG.cpp.o"
  "CMakeFiles/cip_transform.dir/MTCG.cpp.o.d"
  "CMakeFiles/cip_transform.dir/Parallelizer.cpp.o"
  "CMakeFiles/cip_transform.dir/Parallelizer.cpp.o.d"
  "CMakeFiles/cip_transform.dir/Slicer.cpp.o"
  "CMakeFiles/cip_transform.dir/Slicer.cpp.o.d"
  "CMakeFiles/cip_transform.dir/SpecCrossPlanner.cpp.o"
  "CMakeFiles/cip_transform.dir/SpecCrossPlanner.cpp.o.d"
  "libcip_transform.a"
  "libcip_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcip_transform.a"
)

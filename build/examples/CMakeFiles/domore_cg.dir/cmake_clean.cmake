file(REMOVE_RECURSE
  "CMakeFiles/domore_cg.dir/domore_cg.cpp.o"
  "CMakeFiles/domore_cg.dir/domore_cg.cpp.o.d"
  "domore_cg"
  "domore_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domore_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for domore_cg.
# This may be replaced when dependencies are built.

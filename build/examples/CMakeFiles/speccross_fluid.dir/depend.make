# Empty dependencies file for speccross_fluid.
# This may be replaced when dependencies are built.

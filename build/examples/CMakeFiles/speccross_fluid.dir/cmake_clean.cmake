file(REMOVE_RECURSE
  "CMakeFiles/speccross_fluid.dir/speccross_fluid.cpp.o"
  "CMakeFiles/speccross_fluid.dir/speccross_fluid.cpp.o.d"
  "speccross_fluid"
  "speccross_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccross_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
